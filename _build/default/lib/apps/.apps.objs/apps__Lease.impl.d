lib/apps/lease.ml: Core Dsim Format Proto
