lib/apps/randtree_common.ml: Core Format List Proto
