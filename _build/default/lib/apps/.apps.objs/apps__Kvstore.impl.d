lib/apps/kvstore.ml: Core Dsim Format Int List Map Option Proto
