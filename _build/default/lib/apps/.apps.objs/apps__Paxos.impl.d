lib/apps/paxos.ml: Core Dsim Format Hashtbl Int List Map Option Proto
