lib/apps/dissem.ml: Array Core Dsim Format Fun Int List Option Proto Set Wire
