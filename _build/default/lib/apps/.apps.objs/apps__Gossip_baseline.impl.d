lib/apps/gossip_baseline.ml: Array Core Dsim Float Format Fun Gossip Int List Proto Set
