lib/apps/randtree_choice.ml: Core Dsim Format List Proto Randtree_baseline Randtree_common
