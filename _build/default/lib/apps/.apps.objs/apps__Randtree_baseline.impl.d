lib/apps/randtree_baseline.ml: Array Dsim Format List Proto Randtree_common
