lib/apps/dht.ml: Core Dsim Format Fun Int List Map Option Proto
