lib/wire/codec.mli:
