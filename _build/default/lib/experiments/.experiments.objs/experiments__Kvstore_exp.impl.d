lib/experiments/kvstore_exp.ml: Apps Core Dsim Engine List Net Proto
