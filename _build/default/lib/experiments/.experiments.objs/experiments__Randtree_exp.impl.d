lib/experiments/randtree_exp.ml: Apps Core Dsim Engine Hashtbl Int List Net Option Proto
