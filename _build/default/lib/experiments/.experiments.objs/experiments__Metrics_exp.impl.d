lib/experiments/metrics_exp.ml: Filename Metrics String Sys
