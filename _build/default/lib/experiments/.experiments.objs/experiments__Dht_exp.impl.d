lib/experiments/dht_exp.ml: Apps Core Dsim Engine List Net Proto
