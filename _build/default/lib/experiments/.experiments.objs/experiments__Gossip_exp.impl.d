lib/experiments/gossip_exp.ml: Apps Core Dsim Engine List Net Proto Runtime
