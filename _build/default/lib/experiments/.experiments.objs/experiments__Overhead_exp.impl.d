lib/experiments/overhead_exp.ml: Apps Core Dsim Float Fun Hashtbl List Net Option Proto Runtime
