lib/experiments/steering_exp.ml: Apps Core List Net Proto Runtime
