lib/experiments/paxos_exp.ml: Apps Core Dsim Engine List Net Proto String
