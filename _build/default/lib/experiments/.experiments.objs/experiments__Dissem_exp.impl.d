lib/experiments/dissem_exp.ml: Apps Core Dsim Engine Float Hashtbl List Net Proto
