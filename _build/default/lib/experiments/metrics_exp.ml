(** E1 — code metrics (paper §4): lines of code and if-else per handler
    of the baseline RandTree versus the choice-exposed rewrite,
    measured on this repository's own sources exactly as the paper
    measured its Mace sources (487 -> 280 LoC, 1.94 -> 0.28 if-else per
    handler). *)

type comparison = {
  baseline : Metrics.Code_metrics.t;
  choice : Metrics.Code_metrics.t;
  loc_reduction_percent : float;
}

let baseline_file = "lib/apps/randtree_baseline.ml"
let choice_file = "lib/apps/randtree_choice.ml"
let gossip_baseline_file = "lib/apps/gossip_baseline.ml"
let gossip_choice_file = "lib/apps/gossip.ml"

(* Locates the repository root by walking up from [start] until the
   sources are visible — works from the project root, from _build
   sandboxes and from test working directories alike. *)
let locate ?(start = Sys.getcwd ()) rel =
  let rec up dir depth =
    if depth > 8 then None
    else
      let candidate = Filename.concat dir rel in
      if Sys.file_exists candidate then Some candidate
      else
        let parent = Filename.dirname dir in
        if String.equal parent dir then None else up parent (depth + 1)
  in
  up start 0

let compare_files ~baseline_file ~choice_file =
  match (locate baseline_file, locate choice_file) with
  | Some b, Some c ->
      let baseline = Metrics.Code_metrics.analyze_file b in
      let choice = Metrics.Code_metrics.analyze_file c in
      Some
        {
          baseline;
          choice;
          loc_reduction_percent = Metrics.Code_metrics.reduction_percent ~baseline ~improved:choice;
        }
  | _ -> None

let run () = compare_files ~baseline_file ~choice_file

(* E1b: the same comparison on the gossip pair — does the pattern
   generalise beyond the paper's single case study? *)
let run_gossip () =
  compare_files ~baseline_file:gossip_baseline_file ~choice_file:gossip_choice_file
