(** A4 — checkpoint overhead vs freshness (paper §3.3.2: "the
    acceptable amount of communication overhead limits the rate at
    which information can be exchanged").

    The CrystalBall runtime is attached to the bandwidth-bound swarm
    (E5) with the app's real state codec, so every checkpoint
    collection serializes each peer's state — its bitmap and neighbour
    file maps — and charges the bytes to the peer's access link, where
    they contend with block transfers. Sweeping the checkpoint period
    shows the tradeoff: fresher models cost real application
    throughput. *)

module App = Apps.Dissem.Default
module R = Runtime.Crystal.Make (App)
module E = R.E

type outcome = {
  checkpoint_period : float option;  (** [None] = no runtime attached *)
  mean_completion_s : float;
  max_completion_s : float;
  checkpoint_bytes : int;
  checkpoints : int;
}

let population = Apps.Dissem.Default_params.population

(* Collection fan-out. The paper notes CrystalBall "also works with
   systems with full global knowledge"; that is the expensive regime
   where the overhead limit bites, so it is what we sweep. *)
let neighbors (st : App.state) =
  let self = Proto.Node_id.to_int (App.self_of st) in
  List.filter_map
    (fun i -> if i = self then None else Some (Proto.Node_id.of_int i))
    (List.init population Fun.id)

let run ?(seed = 42) ?(deadline = 120.) ~checkpoint_period () =
  (* Same workload and topology as E5's choked seed: bandwidth is the
     scarce resource the checkpoints will eat. *)
  let topo =
    let rng = Dsim.Rng.create (seed + 211) in
    let p =
      {
        Net.Topology.default_transit_stub with
        Net.Topology.transits = 2;
        stubs_per_transit = 2;
        clients_per_stub = population / 4;
      }
    in
    let base = Net.Topology.transit_stub ~jitter_rng:rng p in
    Net.Topology.degrade base (fun a b prop ->
        if a = 0 || b = 0 then
          Net.Linkprop.v ~latency:prop.Net.Linkprop.latency
            ~bandwidth:(Float.min 62_500. prop.Net.Linkprop.bandwidth)
            ~loss:prop.Net.Linkprop.loss
        else prop)
  in
  let eng = E.create ~seed ~check_properties:false ~topology:topo () in
  E.set_resolver eng Core.Resolver.random;
  let cry =
    Option.map
      (fun period ->
        R.attach
          ~config:
            {
              Runtime.Config.default with
              Runtime.Config.checkpoint_period = period;
              checkpoint_delay = 0.05;
              (* Pure overhead measurement: steering itself is off the
                 table (huge period), only collection traffic counts. *)
              steer_period = 1e9;
              steer_depth = 0;
            }
          ~codec:App.state_codec
          ~neighbors:(fun st -> neighbors st)
          eng)
      checkpoint_period
  in
  let rng = Dsim.Rng.create (seed + 5) in
  for i = 0 to population - 1 do
    E.spawn eng ~after:(Dsim.Rng.float rng 0.2) (Proto.Node_id.of_int i)
  done;
  let completion = Hashtbl.create population in
  let start = E.now eng in
  let advance dt = match cry with Some c -> R.run_for c dt | None -> E.run_for eng dt in
  let rec poll () =
    List.iter
      (fun (id, st) ->
        (* The seed is born complete; only real downloads count. *)
        if
          Proto.Node_id.to_int id <> 0
          && App.complete st
          && not (Hashtbl.mem completion id)
        then Hashtbl.replace completion id (Dsim.Vtime.diff (E.now eng) start))
      (E.live_nodes eng);
    if Hashtbl.length completion < population - 1 && Dsim.Vtime.diff (E.now eng) start < deadline
    then begin
      advance 0.5;
      poll ()
    end
  in
  poll ();
  let stats = Dsim.Stats.create () in
  Hashtbl.iter (fun _ t -> Dsim.Stats.add stats t) completion;
  let report = Option.map R.report cry in
  {
    checkpoint_period;
    mean_completion_s = (if Dsim.Stats.count stats = 0 then deadline else Dsim.Stats.mean stats);
    max_completion_s = (if Dsim.Stats.count stats = 0 then deadline else Dsim.Stats.max stats);
    checkpoint_bytes = (match report with Some r -> r.R.checkpoint_bytes | None -> 0);
    checkpoints = (match report with Some r -> r.R.checkpoints_taken | None -> 0);
  }
