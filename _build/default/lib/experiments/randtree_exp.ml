(** The paper's case-study experiments (§4): 31 nodes join a random
    overlay tree on an Internet-like topology; then an entire subtree
    fails and rejoins. Reported metric: maximum tree depth.

    Three setups, as in the paper:
    - [Baseline]: hard-coded policy ({!Apps.Randtree_baseline});
    - [Choice_random]: exposed choices resolved uniformly at random;
    - [Choice_crystalball]: exposed choices resolved by predictive
      lookahead.
    Plus two extensions: a greedy network-aware resolver and a learned
    (bandit) resolver. *)

module Baseline_app = Apps.Randtree_baseline.Default
module Choice_app = Apps.Randtree_choice.Default
module Baseline_engine = Engine.Sim.Make (Baseline_app)
module Choice_engine = Engine.Sim.Make (Choice_app)

type setup =
  | Baseline
  | Choice_random
  | Choice_crystalball
  | Choice_greedy
  | Choice_bandit

let setup_name = function
  | Baseline -> "Baseline"
  | Choice_random -> "Choice-Random"
  | Choice_crystalball -> "Choice-CrystalBall"
  | Choice_greedy -> "Choice-Greedy"
  | Choice_bandit -> "Choice-Bandit"

let all_setups = [ Baseline; Choice_random; Choice_crystalball; Choice_greedy; Choice_bandit ]
let paper_setups = [ Baseline; Choice_random; Choice_crystalball ]

type outcome = {
  setup : setup;
  nodes : int;
  joined : int;
  depth_after_join : int;
  depth_after_rejoin : int option;  (** [None] when the failure phase was not run *)
  messages : int;
  forks : int;
}

let default_nodes = 31
let join_settle = 30.0

(* The failed subtree rejoins promptly and almost simultaneously — a
   join storm arriving while the survivors' failure detectors have not
   yet evicted the dead children, which is what degrades the tree in
   the paper's live run. *)
let failure_gap = 0.5
let rejoin_settle = 40.0

let topology ~seed ~nodes =
  let rng = Dsim.Rng.create (seed + 7919) in
  let p =
    {
      Net.Topology.default_transit_stub with
      Net.Topology.transits = 4;
      stubs_per_transit = 2;
      clients_per_stub = ((nodes + 7) / 8) + 1;
    }
  in
  Net.Topology.transit_stub ~jitter_rng:rng p

(* The engine interface the experiment needs, abstracted so one driver
   covers both app variants. *)
type driver = {
  spawn : ?after:float -> int -> unit;
  kill : int -> unit;
  restart : ?after:float -> int -> unit;
  run_for : float -> unit;
  max_depth : unit -> int;
  joined_count : unit -> int;
  subtree_of_root_child : unit -> int list;
      (* members of the larger root-child subtree, by id *)
  messages : unit -> int;
  forks : unit -> int;
}

module Tree_shape (App : sig
  type state

  val parent_of : state -> Proto.Node_id.t option
  val is_joined : state -> bool
end) =
struct
  let max_depth view = Apps.Randtree_common.Measure.max_depth ~parent:App.parent_of view
  let joined view = Apps.Randtree_common.Measure.joined_count ~joined:App.is_joined view

  (* Partition live nodes by which child-of-root their parent chain
     passes through; return the largest group. *)
  let largest_root_subtree view ~root =
    let top_of id =
      let rec climb id prev hops =
        if hops > Proto.View.node_count view then None
        else
          match Proto.View.find view id with
          | None -> None
          | Some st -> (
              match App.parent_of st with
              | None -> if Proto.Node_id.equal id root then prev else None
              | Some p -> climb p (Some id) (hops + 1))
      in
      climb id None 0
    in
    let groups = Hashtbl.create 8 in
    List.iter
      (fun (id, _) ->
        if not (Proto.Node_id.equal id root) then
          match top_of id with
          | Some top ->
              let key = Proto.Node_id.to_int top in
              Hashtbl.replace groups key (id :: Option.value ~default:[] (Hashtbl.find_opt groups key))
          | None -> ())
      view.Proto.View.nodes;
    Hashtbl.fold
      (fun _ members best ->
        if List.length members > List.length best then members else best)
      groups []
    |> List.map Proto.Node_id.to_int
end

module Baseline_shape = Tree_shape (struct
  type state = Baseline_app.state

  let parent_of = Baseline_app.parent_of
  let is_joined = Baseline_app.is_joined
end)

module Choice_shape = Tree_shape (struct
  type state = Choice_app.state

  let parent_of = Choice_app.parent_of
  let is_joined = Choice_app.is_joined
end)

let root = Proto.Node_id.of_int 0

let baseline_driver ~seed ~nodes =
  let eng = Baseline_engine.create ~seed ~topology:(topology ~seed ~nodes) () in
  Baseline_engine.set_resolver eng Core.Resolver.random;
  {
    spawn = (fun ?after i -> Baseline_engine.spawn eng ?after (Proto.Node_id.of_int i));
    kill = (fun i -> Baseline_engine.kill eng (Proto.Node_id.of_int i));
    restart = (fun ?after i -> Baseline_engine.restart eng ?after (Proto.Node_id.of_int i));
    run_for = (fun dt -> Baseline_engine.run_for eng dt);
    max_depth = (fun () -> Baseline_shape.max_depth (Baseline_engine.global_view eng));
    joined_count = (fun () -> Baseline_shape.joined (Baseline_engine.global_view eng));
    subtree_of_root_child =
      (fun () -> Baseline_shape.largest_root_subtree (Baseline_engine.global_view eng) ~root);
    messages = (fun () -> (Baseline_engine.stats eng).messages_delivered);
    forks = (fun () -> (Baseline_engine.stats eng).lookahead_forks);
  }

let choice_driver ~seed ~nodes setup =
  let eng = Choice_engine.create ~seed ~topology:(topology ~seed ~nodes) () in
  (match setup with
  | Choice_random -> Choice_engine.set_resolver eng Core.Resolver.random
  | Choice_crystalball ->
      Choice_engine.set_lookahead eng
        { Choice_engine.default_lookahead with horizon = 3.0; max_events = 600 }
  | Choice_greedy -> Choice_engine.set_resolver eng (Core.Resolver.greedy ~feature:"rtt_ms" ())
  | Choice_bandit ->
      let bandit = Core.Bandit.create () in
      Choice_engine.set_resolver eng (Core.Bandit.to_resolver bandit);
      Choice_engine.enable_reward_feedback eng ~window:3.0
  | Baseline -> invalid_arg "choice_driver: Baseline uses baseline_driver");
  {
    spawn = (fun ?after i -> Choice_engine.spawn eng ?after (Proto.Node_id.of_int i));
    kill = (fun i -> Choice_engine.kill eng (Proto.Node_id.of_int i));
    restart = (fun ?after i -> Choice_engine.restart eng ?after (Proto.Node_id.of_int i));
    run_for = (fun dt -> Choice_engine.run_for eng dt);
    max_depth = (fun () -> Choice_shape.max_depth (Choice_engine.global_view eng));
    joined_count = (fun () -> Choice_shape.joined (Choice_engine.global_view eng));
    subtree_of_root_child =
      (fun () -> Choice_shape.largest_root_subtree (Choice_engine.global_view eng) ~root);
    messages = (fun () -> (Choice_engine.stats eng).messages_delivered);
    forks = (fun () -> (Choice_engine.stats eng).lookahead_forks);
  }

let driver ~seed ~nodes = function
  | Baseline -> baseline_driver ~seed ~nodes
  | (Choice_random | Choice_crystalball | Choice_greedy | Choice_bandit) as s ->
      choice_driver ~seed ~nodes s

(* Phase 1 of the case study: all nodes join, staggered. *)
let join_phase d ~nodes ~seed =
  let rng = Dsim.Rng.create (seed + 13) in
  d.spawn 0;
  for i = 1 to nodes - 1 do
    d.spawn ~after:(0.5 +. (float_of_int i *. 0.25) +. Dsim.Rng.float rng 0.2) i
  done;
  d.run_for (join_settle +. (0.25 *. float_of_int nodes))

(* Phase 2: fail the larger root-child subtree, let failure detectors
   react, then let the failed nodes rejoin. *)
let rejoin_phase d ~seed =
  let rng = Dsim.Rng.create (seed + 29) in
  let victims = d.subtree_of_root_child () in
  List.iter d.kill victims;
  d.run_for failure_gap;
  List.iteri
    (fun i v -> d.restart ~after:(float_of_int i *. 0.02 +. Dsim.Rng.float rng 0.05) v)
    victims;
  d.run_for rejoin_settle;
  List.length victims

let run ?(nodes = default_nodes) ?(seed = 42) ?(with_failure = true) setup =
  let d = driver ~seed ~nodes setup in
  join_phase d ~nodes ~seed;
  let depth_after_join = d.max_depth () in
  let depth_after_rejoin =
    if with_failure then begin
      let _victims = rejoin_phase d ~seed in
      Some (d.max_depth ())
    end
    else None
  in
  {
    setup;
    nodes;
    joined = d.joined_count ();
    depth_after_join;
    depth_after_rejoin;
    messages = d.messages ();
    forks = d.forks ();
  }

(* Median-of-seeds variant: the paper reports a single deployment; we
   expose repetition to show the shape is not a seed artefact. *)
let run_median ?(nodes = default_nodes) ?(seeds = [ 42; 43; 44 ]) ?(with_failure = true) setup =
  let outcomes = List.map (fun seed -> run ~nodes ~seed ~with_failure setup) seeds in
  let median_int xs =
    let sorted = List.sort Int.compare xs in
    List.nth sorted (List.length sorted / 2)
  in
  let first = List.hd outcomes in
  {
    first with
    depth_after_join = median_int (List.map (fun (o : outcome) -> o.depth_after_join) outcomes);
    depth_after_rejoin =
      (if with_failure then
         Some (median_int (List.filter_map (fun (o : outcome) -> o.depth_after_rejoin) outcomes))
       else None);
    joined = median_int (List.map (fun (o : outcome) -> o.joined) outcomes);
    messages = median_int (List.map (fun (o : outcome) -> o.messages) outcomes);
  }

(* A5: lookahead with partial knowledge. The paper's runtime predicts
   from a checkpoint {e neighbourhood}, not from global state; scoping
   the lookahead's objective evaluation to the deciding node's h-hop
   tree neighbourhood reproduces that regime and measures what wider
   knowledge is worth. *)
let neighborhood_scope ~hops node view =
  let neighbors_of id =
    match Proto.View.find view id with
    | None -> []
    | Some st ->
        (match Choice_app.parent_of st with Some p -> [ p ] | None -> [])
        @ Choice_app.children_of st
  in
  let rec grow frontier seen k =
    if k = 0 || frontier = [] then seen
    else begin
      let next = List.concat_map neighbors_of frontier in
      let fresh = List.filter (fun id -> not (Proto.Node_id.Set.mem id seen)) next in
      grow fresh
        (List.fold_left (fun s id -> Proto.Node_id.Set.add id s) seen fresh)
        (k - 1)
    end
  in
  Proto.View.restrict view (grow [ node ] (Proto.Node_id.Set.singleton node) hops)

(* Join + rejoin under lookahead whose knowledge is limited to [hops]
   tree hops ([None] = global). Returns (join depth, rejoin depth). *)
let run_scoped ?(nodes = default_nodes) ?(seed = 42) ~hops () =
  let eng = Choice_engine.create ~seed ~topology:(topology ~seed ~nodes) () in
  Choice_engine.set_lookahead eng
    {
      Choice_engine.default_lookahead with
      horizon = 3.0;
      max_events = 600;
      scope = Option.map (fun h -> fun node view -> neighborhood_scope ~hops:h node view) hops;
    };
  let d =
    {
      spawn = (fun ?after i -> Choice_engine.spawn eng ?after (Proto.Node_id.of_int i));
      kill = (fun i -> Choice_engine.kill eng (Proto.Node_id.of_int i));
      restart = (fun ?after i -> Choice_engine.restart eng ?after (Proto.Node_id.of_int i));
      run_for = (fun dt -> Choice_engine.run_for eng dt);
      max_depth = (fun () -> Choice_shape.max_depth (Choice_engine.global_view eng));
      joined_count = (fun () -> Choice_shape.joined (Choice_engine.global_view eng));
      subtree_of_root_child =
        (fun () -> Choice_shape.largest_root_subtree (Choice_engine.global_view eng) ~root);
      messages = (fun () -> (Choice_engine.stats eng).messages_delivered);
      forks = (fun () -> (Choice_engine.stats eng).lookahead_forks);
    }
  in
  join_phase d ~nodes ~seed;
  let join_depth = d.max_depth () in
  let _ = rejoin_phase d ~seed in
  (join_depth, d.max_depth ())

(* Continuous churn: random non-root nodes keep failing and rejoining
   for [duration] seconds while we sample the tree. Reports the mean
   and worst sampled depth and how much of the population was joined on
   average — the "robustness to various deployment settings" axis. *)
type churn_outcome = {
  churn_setup : setup;
  samples : int;
  mean_depth : float;
  worst_depth : int;
  mean_joined : float;
}

let run_churn ?(nodes = default_nodes) ?(seed = 42) ?(duration = 120.) ?(churn_period = 4.)
    setup =
  let d = driver ~seed ~nodes setup in
  join_phase d ~nodes ~seed;
  let rng = Dsim.Rng.create (seed + 71) in
  let depth_stats = Dsim.Stats.create () in
  let joined_stats = Dsim.Stats.create () in
  let worst = ref 0 in
  let dead = ref [] in
  let elapsed = ref 0. in
  while !elapsed < duration do
    (* Revive one casualty, then fell a fresh victim — never the node
       whose reboot is still in flight. *)
    let revived =
      match !dead with
      | v :: rest ->
          d.restart v;
          dead := rest;
          Some v
      | [] -> None
    in
    let victim = 1 + Dsim.Rng.int rng (nodes - 1) in
    if (not (List.mem victim !dead)) && revived <> Some victim then begin
      d.kill victim;
      dead := !dead @ [ victim ]
    end;
    d.run_for churn_period;
    elapsed := !elapsed +. churn_period;
    Dsim.Stats.add depth_stats (float_of_int (d.max_depth ()));
    Dsim.Stats.add joined_stats (float_of_int (d.joined_count ()));
    worst := max !worst (d.max_depth ())
  done;
  {
    churn_setup = setup;
    samples = Dsim.Stats.count depth_stats;
    mean_depth = Dsim.Stats.mean depth_stats;
    worst_depth = !worst;
    mean_joined = Dsim.Stats.mean joined_stats;
  }

let optimal_depth ~nodes ~max_children =
  (* Smallest d such that a complete max_children-ary tree of depth d
     holds >= nodes (root at depth 1). *)
  let rec grow depth capacity level =
    if capacity >= nodes then depth
    else
      let level = level * max_children in
      grow (depth + 1) (capacity + level) level
  in
  grow 1 1 1
