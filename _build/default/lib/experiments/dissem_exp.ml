(** E5 — content-distribution block choice (paper §3.1). A 16-peer
    swarm downloads a 64-block file from a seed; we sweep the seed's
    access bandwidth and compare block-selection policies. The paper's
    point — random and rarest-random are {e both} reasonable and
    neither dominates everywhere — shows up as a gap that opens as the
    seed link tightens. *)

module App = Apps.Dissem.Default
module E = Engine.Sim.Make (App)

type policy = Random_block | Rarest | Crystalball | Bandit

let policy_name = function
  | Random_block -> "Random"
  | Rarest -> "Rarest-random"
  | Crystalball -> "CrystalBall"
  | Bandit -> "Bandit"

let all_policies = [ Random_block; Rarest; Crystalball; Bandit ]

type scenario = Fast_seed | Slow_seed | Choked_seed

let scenario_name = function
  | Fast_seed -> "fast-seed"
  | Slow_seed -> "slow-seed"
  | Choked_seed -> "choked-seed"

let all_scenarios = [ Fast_seed; Slow_seed; Choked_seed ]

type outcome = {
  policy : policy;
  scenario : scenario;
  completed : int;  (** peers that finished before the deadline *)
  mean_completion_s : float;
  max_completion_s : float;
  duplicate_pieces : int;
  messages : int;
}

let population = Apps.Dissem.Default_params.population

let seed_bandwidth = function
  | Fast_seed -> 1_250_000.
  (* 10 Mbit/s *)
  | Slow_seed -> 250_000.
  (* 2 Mbit/s *)
  | Choked_seed -> 62_500.
(* 0.5 Mbit/s *)

let topology ~seed ~scenario =
  let rng = Dsim.Rng.create (seed + 211) in
  let p =
    {
      Net.Topology.default_transit_stub with
      Net.Topology.transits = 2;
      stubs_per_transit = 2;
      clients_per_stub = population / 4;
    }
  in
  let base = Net.Topology.transit_stub ~jitter_rng:rng p in
  let bw = seed_bandwidth scenario in
  Net.Topology.degrade base (fun a b prop ->
      if a = 0 || b = 0 then
        Net.Linkprop.v ~latency:prop.Net.Linkprop.latency
          ~bandwidth:(Float.min bw prop.Net.Linkprop.bandwidth)
          ~loss:prop.Net.Linkprop.loss
      else prop)

let make_engine ~seed ~scenario policy =
  (* Property checking is off on this workload: views are large and
     checked thousands of times; the dissem invariants are covered by
     the test suite instead. *)
  let eng = E.create ~seed ~check_properties:false ~topology:(topology ~seed ~scenario) () in
  (match policy with
  | Random_block -> E.set_resolver eng Core.Resolver.random
  | Rarest -> E.set_resolver eng (Core.Resolver.greedy ~feature:"rarity" ())
  | Crystalball ->
      (* Lookahead over the rarest-first heuristic: nested decisions in
         speculative branches fall back to rarity, so prediction refines
         the domain heuristic instead of replacing it with noise. *)
      E.set_lookahead eng
        ~fallback:(Core.Resolver.greedy ~feature:"rarity" ())
        { E.default_lookahead with horizon = 3.0; max_events = 500; max_candidates = 6 }
  | Bandit ->
      let bandit = Core.Bandit.create () in
      E.set_resolver eng (Core.Bandit.to_resolver bandit);
      E.enable_reward_feedback eng ~window:1.0);
  eng

let run ?(seed = 42) ?(deadline = 120.) ~scenario policy =
  let eng = make_engine ~seed ~scenario policy in
  let rng = Dsim.Rng.create (seed + 5) in
  for i = 0 to population - 1 do
    E.spawn eng ~after:(Dsim.Rng.float rng 0.2) (Proto.Node_id.of_int i)
  done;
  let completion = Hashtbl.create population in
  let start = E.now eng in
  let rec poll () =
    List.iter
      (fun (id, st) ->
        (* The seed is born complete; only real downloads count. *)
        if
          Proto.Node_id.to_int id <> 0
          && App.complete st
          && not (Hashtbl.mem completion id)
        then Hashtbl.replace completion id (Dsim.Vtime.diff (E.now eng) start))
      (E.live_nodes eng);
    let done_ = Hashtbl.length completion = population - 1 in
    if (not done_) && Dsim.Vtime.diff (E.now eng) start < deadline then begin
      E.run_for eng 0.5;
      poll ()
    end
  in
  poll ();
  let stats = Dsim.Stats.create () in
  Hashtbl.iter (fun _ t -> Dsim.Stats.add stats t) completion;
  (* Pieces beyond the (population-1) * blocks any lossless run needs
     are duplicates — wasted bandwidth from poor block choices. *)
  let needed = (population - 1) * Apps.Dissem.Default_params.blocks in
  let duplicates = max 0 (E.delivered_of_kind eng "piece" - needed) in
  {
    policy;
    scenario;
    completed = Hashtbl.length completion;
    mean_completion_s = (if Dsim.Stats.count stats = 0 then deadline else Dsim.Stats.mean stats);
    max_completion_s = (if Dsim.Stats.count stats = 0 then deadline else Dsim.Stats.max stats);
    duplicate_pieces = duplicates;
    messages = (E.stats eng).messages_delivered;
  }
