(** E7 — DHT routing choice (paper §3.1: "choosing the node to forward
    a message to"). 32 Chord-style nodes issue lookups over a WAN; we
    compare next-hop policies. Classic greedy-by-progress minimises
    hops; proximity routing (greedy-by-RTT) takes more hops over
    cheaper links; predictive and learned resolvers balance the two
    using the exposed objective. *)

module App = Apps.Dht.Default
module E = Engine.Sim.Make (App)

type policy = Progress | Proximity | Pns | Random_hop | Crystalball | Bandit

let policy_name = function
  | Progress -> "Greedy-progress"
  | Proximity -> "Proximity(RTT)"
  | Pns -> "PNS(combined)"
  | Random_hop -> "Random"
  | Crystalball -> "CrystalBall"
  | Bandit -> "Bandit"

let all_policies = [ Progress; Proximity; Pns; Random_hop; Crystalball; Bandit ]

type outcome = {
  policy : policy;
  completed : int;
  issued : int;
  mean_latency_ms : float;
  p99_latency_ms : float;
  mean_hops : float;
  hop_violations : int;
}

let population = Apps.Dht.Default_params.population

let topology ~seed =
  let rng = Dsim.Rng.create (seed + 401) in
  let p =
    {
      Net.Topology.default_transit_stub with
      Net.Topology.transits = 4;
      stubs_per_transit = 2;
      clients_per_stub = population / 8;
    }
  in
  Net.Topology.transit_stub ~jitter_rng:rng p

let make_engine ~seed policy =
  let eng = E.create ~seed ~topology:(topology ~seed) () in
  (match policy with
  | Progress -> E.set_resolver eng (Core.Resolver.greedy ~feature:"remaining" ())
  | Proximity -> E.set_resolver eng (Core.Resolver.greedy ~feature:"rtt_ms" ())
  | Pns -> E.set_resolver eng Apps.Dht.pns_resolver
  | Random_hop -> E.set_resolver eng Core.Resolver.random
  | Crystalball ->
      (* Nested hops in speculative branches follow classic Chord. *)
      E.set_lookahead eng
        ~fallback:(Core.Resolver.greedy ~feature:"remaining" ())
        { E.default_lookahead with horizon = 1.0; max_events = 200; max_candidates = 4 }
  | Bandit ->
      let bandit = Core.Bandit.create () in
      E.set_resolver eng (Core.Bandit.to_resolver bandit);
      E.enable_reward_feedback eng ~window:1.0);
  eng

let run ?(seed = 42) ?(duration = 40.) policy =
  let eng = make_engine ~seed policy in
  let rng = Dsim.Rng.create (seed + 17) in
  for i = 0 to population - 1 do
    E.spawn eng ~after:(Dsim.Rng.float rng 0.3) (Proto.Node_id.of_int i)
  done;
  E.run_for eng duration;
  let lat = Dsim.Stats.create () and hops = Dsim.Stats.create () in
  let issued = ref 0 and violations = ref 0 in
  List.iter
    (fun (_, st) ->
      issued := !issued + App.issued st;
      violations := !violations + App.hop_violations st;
      List.iter
        (fun (l, h) ->
          Dsim.Stats.add lat (l *. 1000.);
          Dsim.Stats.add hops (float_of_int h))
        (App.lookups st))
    (E.live_nodes eng);
  {
    policy;
    completed = Dsim.Stats.count lat;
    issued = !issued;
    mean_latency_ms = Dsim.Stats.mean lat;
    p99_latency_ms = (if Dsim.Stats.count lat = 0 then 0. else Dsim.Stats.percentile lat 99.);
    mean_hops = Dsim.Stats.mean hops;
    hop_violations = !violations;
  }
