(** Declarative fault schedules.

    Experiments and tests describe {e what} goes wrong and {e when} —
    crashes, reboots, partitions, link degradations — as data; the plan
    is then executed against any engine while it runs. This keeps
    failure scenarios reproducible, printable, and reusable across
    protocols ("robustness to various deployment settings" needs the
    settings to be first-class). *)

type event =
  | Kill of int  (** crash the node with this id *)
  | Restart of int
  | Partition of int list * int list
      (** cut every link between the two groups, both directions *)
  | Heal_partition of int list * int list
  | Degrade of { endpoint : int; latency_factor : float; bandwidth_factor : float }
      (** multiply every path touching [endpoint] *)
  | Restore of int  (** undo {!Degrade} on the endpoint *)

type t
(** A finite schedule of timed fault events. *)

val plan : (float * event) list -> t
(** [plan events] with times in virtual seconds relative to execution
    start; events fire in time order regardless of list order.
    @raise Invalid_argument on a negative time. *)

val events : t -> (float * event) list
(** The schedule, sorted by time. *)

val duration : t -> float
(** Time of the last event; 0 for an empty plan. *)

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit

(** Executors are engine-specific because engines are app-specific;
    [Run] builds one from the five primitives every engine offers. *)
module Run (E : sig
  type t

  val now : t -> Dsim.Vtime.t
  val run_for : t -> float -> unit
  val kill : t -> Proto.Node_id.t -> unit
  val restart : t -> ?after:float -> Proto.Node_id.t -> unit
  val netem : t -> Net.Netem.t
end) : sig
  val execute : ?and_then:float -> E.t -> t -> unit
  (** Runs the engine through the whole plan, firing each event at its
      offset, then keeps running for [and_then] extra seconds (default
      0). Degradations are applied as link overrides relative to the
      topology's current effective paths. *)
end
