type event =
  | Kill of int
  | Restart of int
  | Partition of int list * int list
  | Heal_partition of int list * int list
  | Degrade of { endpoint : int; latency_factor : float; bandwidth_factor : float }
  | Restore of int

type t = { schedule : (float * event) list }

let plan events =
  List.iter (fun (at, _) -> if at < 0. then invalid_arg "Faultplan.plan: negative time") events;
  { schedule = List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) events }

let events t = t.schedule
let duration t = List.fold_left (fun acc (at, _) -> Float.max acc at) 0. t.schedule

let pp_group ppf g =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Format.pp_print_int)
    g

let pp_event ppf = function
  | Kill n -> Format.fprintf ppf "kill(%d)" n
  | Restart n -> Format.fprintf ppf "restart(%d)" n
  | Partition (a, b) -> Format.fprintf ppf "partition(%a | %a)" pp_group a pp_group b
  | Heal_partition (a, b) -> Format.fprintf ppf "heal(%a | %a)" pp_group a pp_group b
  | Degrade { endpoint; latency_factor; bandwidth_factor } ->
      Format.fprintf ppf "degrade(%d, lat x%.1f, bw /%.1f)" endpoint latency_factor
        (1. /. bandwidth_factor)
  | Restore n -> Format.fprintf ppf "restore(%d)" n

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ")
    (fun ppf (at, e) -> Format.fprintf ppf "@[%.2fs: %a@]" at pp_event e)
    ppf t.schedule

module Run (E : sig
  type t

  val now : t -> Dsim.Vtime.t
  val run_for : t -> float -> unit
  val kill : t -> Proto.Node_id.t -> unit
  val restart : t -> ?after:float -> Proto.Node_id.t -> unit
  val netem : t -> Net.Netem.t
end) =
struct
  let cross f a b =
    List.iter (fun x -> List.iter (fun y -> if x <> y then f x y) b) a

  let apply eng = function
    | Kill n -> E.kill eng (Proto.Node_id.of_int n)
    | Restart n -> E.restart eng (Proto.Node_id.of_int n)
    | Partition (a, b) -> cross (fun x y -> Net.Netem.cut_bidirectional (E.netem eng) x y) a b
    | Heal_partition (a, b) ->
        cross
          (fun x y ->
            Net.Netem.heal (E.netem eng) ~src:x ~dst:y;
            Net.Netem.heal (E.netem eng) ~src:y ~dst:x)
          a b
    | Degrade { endpoint; latency_factor; bandwidth_factor } ->
        let nem = E.netem eng in
        let n = Net.Topology.size (Net.Netem.topology nem) in
        for other = 0 to n - 1 do
          if other <> endpoint then begin
            let slow (p : Net.Linkprop.t) =
              Net.Linkprop.v
                ~latency:(p.Net.Linkprop.latency *. latency_factor)
                ~bandwidth:(Float.max 1. (p.Net.Linkprop.bandwidth *. bandwidth_factor))
                ~loss:p.Net.Linkprop.loss
            in
            Net.Netem.set_override nem ~src:endpoint ~dst:other
              (slow (Net.Netem.path nem ~src:endpoint ~dst:other));
            Net.Netem.set_override nem ~src:other ~dst:endpoint
              (slow (Net.Netem.path nem ~src:other ~dst:endpoint))
          end
        done
    | Restore endpoint ->
        let nem = E.netem eng in
        let n = Net.Topology.size (Net.Netem.topology nem) in
        for other = 0 to n - 1 do
          if other <> endpoint then begin
            Net.Netem.clear_override nem ~src:endpoint ~dst:other;
            Net.Netem.clear_override nem ~src:other ~dst:endpoint
          end
        done

  let execute ?(and_then = 0.) eng t =
    let start = E.now eng in
    List.iter
      (fun (at, event) ->
        let elapsed = Dsim.Vtime.diff (E.now eng) start in
        if at > elapsed then E.run_for eng (at -. elapsed);
        apply eng event)
      t.schedule;
    if and_then > 0. then E.run_for eng and_then
end
