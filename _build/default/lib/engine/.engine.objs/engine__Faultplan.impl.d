lib/engine/faultplan.ml: Dsim Float Format List Net Proto
