lib/engine/faultplan.mli: Dsim Format Net Proto
