lib/engine/sim.mli: Core Dsim Net Proto
