lib/engine/sim.ml: Array Core Dsim Float Hashtbl List Map Net Option Printf Proto String
