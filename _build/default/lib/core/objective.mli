(** Exposed objectives (paper §3.2).

    An objective scores a view of the system — higher is better. The
    view type is abstract here; the engine instantiates it with its
    global-view type, and the runtime instantiates it with the partial
    view reconstructed from collected checkpoints. Weighted sums let a
    deployment prioritise, e.g., tree balance over message count. *)

type 'view t = { name : string; weight : float; score : 'view -> float }

val v : name:string -> ?weight:float -> ('view -> float) -> 'view t
(** [weight] defaults to 1.0 and must be positive. *)

val score : 'view t -> 'view -> float
(** Weighted score of one objective. *)

val total : 'view t list -> 'view -> float
(** Sum of weighted scores; 0 for the empty list. *)

val map_view : ('b -> 'a) -> 'a t -> 'b t
(** Precompose with a view projection, e.g. to evaluate an engine-view
    objective on a runtime snapshot. *)

val constrained : 'view t -> penalty:float -> ('view -> bool) -> 'view t
(** [constrained obj ~penalty ok] subtracts [penalty] whenever [ok]
    fails — a soft way to fold a safety predicate into an objective,
    used when ranking futures that contain violations. *)
