(** Choice points — the heart of the paper's programming model.

    Instead of hard-coding a policy ("forward the join to a random
    child"), a handler builds a {!t} listing the alternatives it could
    take, each annotated with a label and a feature vector, and asks the
    runtime to pick one. The runtime sees only the label, the
    per-alternative features and the arity — never the application
    values — so one resolver implementation serves every protocol. *)

type 'a alternative = {
  value : 'a;
  features : (string * float) list;
      (** numeric hints the resolver may use, e.g.
          [("rtt_ms", 12.); ("depth", 3.)] *)
  describe : string;  (** for traces and debugging *)
}

type 'a t = private { label : string; alternatives : 'a alternative list }

val alt : ?features:(string * float) list -> ?describe:string -> 'a -> 'a alternative
(** [describe] defaults to ["-"]. *)

val make : label:string -> 'a alternative list -> 'a t
(** @raise Invalid_argument if the alternative list is empty or the
    label is empty. *)

val of_values : label:string -> ?feature:('a -> (string * float) list) -> 'a list -> 'a t
(** Convenience: wraps plain values, deriving features with [feature]
    (default: none). *)

val arity : 'a t -> int

val nth : 'a t -> int -> 'a
(** @raise Invalid_argument if the index is out of range. *)

val label : 'a t -> string

val feature_matrix : 'a t -> (string * float) list array
(** Features of each alternative, in order — what a resolver sees. *)

(** A resolver's view of a pending choice: everything except the
    application values. [occurrence] counts choice points already
    resolved while processing the current event, so a forced replay can
    target exactly one of several nested choices. *)
type site = {
  site_label : string;
  site_node : int;
  site_occurrence : int;
  site_arity : int;
  site_features : (string * float) list array;
}

val site : node:int -> occurrence:int -> 'a t -> site

val feature : site -> alt:int -> string -> float option
(** Looks up one named feature of one alternative. *)

val pp_site : Format.formatter -> site -> unit
