lib/core/choice.mli: Format
