lib/core/choice.ml: Array Format List String
