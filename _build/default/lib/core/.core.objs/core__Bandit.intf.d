lib/core/bandit.mli: Choice Dsim Resolver
