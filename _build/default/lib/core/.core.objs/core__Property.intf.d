lib/core/property.mli:
