lib/core/property.ml: List
