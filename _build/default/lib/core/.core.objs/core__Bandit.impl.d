lib/core/bandit.ml: Array Buffer Choice Dsim Float Hashtbl List Resolver String
