lib/core/objective.ml: List
