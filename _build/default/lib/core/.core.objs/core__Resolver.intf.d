lib/core/resolver.mli: Choice Dsim
