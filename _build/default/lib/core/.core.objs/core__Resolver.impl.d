lib/core/resolver.ml: Choice Dsim Hashtbl List Option Printf String
