lib/core/objective.mli:
