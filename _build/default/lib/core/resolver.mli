(** Resolvers turn a pending {!Choice.site} into a decision.

    A resolver never sees application values — only the site's label,
    arity and feature matrix — so resolvers compose freely with any
    protocol. Stateful resolvers (round-robin, bandits, the CrystalBall
    lookahead built in [Runtime]) close over their own state and may
    learn from {!feedback}. *)

type t = {
  name : string;
  choose : Dsim.Rng.t -> Choice.site -> int;
      (** must return an index in [\[0, site_arity)]. *)
  feedback : site:Choice.site -> chosen:int -> reward:float -> unit;
      (** called by the runtime when the outcome of an earlier decision
          has been observed; no-op for stateless resolvers. *)
}

val make :
  name:string ->
  ?feedback:(site:Choice.site -> chosen:int -> reward:float -> unit) ->
  (Dsim.Rng.t -> Choice.site -> int) ->
  t

val first : t
(** Always picks alternative 0 — the degenerate "the programmer already
    decided" resolver; useful as a baseline and in tests. *)

val random : t
(** Uniform choice — the paper's Choice-Random setup. *)

val round_robin : unit -> t
(** Cycles through alternatives per label; fresh state per call. *)

val scripted : (string * int) list -> t
(** [scripted moves] answers each label from the association list
    (clamped to arity), falling back to 0 for unlisted labels. Used by
    the lookahead machinery to force one branch during replay. *)

val greedy : feature:string -> ?maximize:bool -> unit -> t
(** Picks the alternative whose [feature] is smallest (or largest when
    [maximize]); alternatives missing the feature rank last. This is
    the classic hand-tuned heuristic expressed as a resolver. *)

val weighted : feature:string -> t
(** Samples an alternative with probability proportional to its
    (non-negative) value of [feature]; uniform if absent everywhere. *)

val by_label : (string * t) list -> default:t -> t
(** Routes each choice to the resolver registered for its label —
    e.g. lookahead for ["join.forward"], a trained bandit for
    ["gossip.peer"] — falling back to [default]. Feedback is routed the
    same way. *)

val epsilon_mix : epsilon:float -> explore:t -> exploit:t -> t
(** With probability [epsilon] asks [explore], otherwise [exploit];
    feedback goes to both. The standard way to keep a frozen policy
    honest in a drifting environment.
    @raise Invalid_argument unless [epsilon] is in [0,1]. *)

val apply : t -> Dsim.Rng.t -> 'a Choice.t -> node:int -> occurrence:int -> 'a * int
(** Resolves a full choice: builds the site, asks the resolver, checks
    the returned index, and returns the selected value with its index.
    @raise Invalid_argument if the resolver answers out of range. *)
