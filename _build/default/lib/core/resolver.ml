type t = {
  name : string;
  choose : Dsim.Rng.t -> Choice.site -> int;
  feedback : site:Choice.site -> chosen:int -> reward:float -> unit;
}

let no_feedback ~site:_ ~chosen:_ ~reward:_ = ()

let make ~name ?(feedback = no_feedback) choose = { name; choose; feedback }

let first = make ~name:"first" (fun _ _ -> 0)

let random =
  make ~name:"random" (fun rng site -> Dsim.Rng.int rng site.Choice.site_arity)

let round_robin () =
  let counters : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let choose _rng (site : Choice.site) =
    let k = site.site_label in
    let c = Option.value ~default:0 (Hashtbl.find_opt counters k) in
    Hashtbl.replace counters k (c + 1);
    c mod site.site_arity
  in
  make ~name:"round-robin" choose

let scripted moves =
  let choose _rng (site : Choice.site) =
    match List.assoc_opt site.site_label moves with
    | None -> 0
    | Some i -> max 0 (min (site.site_arity - 1) i)
  in
  make ~name:"scripted" choose

let greedy ~feature ?(maximize = false) () =
  let choose rng (site : Choice.site) =
    let score i =
      match Choice.feature site ~alt:i feature with
      | Some v -> if maximize then -.v else v
      | None -> infinity
    in
    let best_score = ref (score 0) in
    for i = 1 to site.site_arity - 1 do
      let s = score i in
      if s < !best_score then best_score := s
    done;
    (* Random among ties — "rarest-random" style — so that independent
       nodes facing the same feature landscape do not all stampede to
       the same alternative. *)
    let tied = ref [] in
    for i = site.site_arity - 1 downto 0 do
      if score i <= !best_score then tied := i :: !tied
    done;
    Dsim.Rng.pick rng !tied
  in
  make ~name:(Printf.sprintf "greedy(%s%s)" (if maximize then "max " else "min ") feature) choose

let weighted ~feature =
  let choose rng (site : Choice.site) =
    let w i =
      match Choice.feature site ~alt:i feature with
      | Some v when v > 0. -> v
      | Some _ | None -> 0.
    in
    let total = ref 0. in
    for i = 0 to site.site_arity - 1 do
      total := !total +. w i
    done;
    if !total <= 0. then Dsim.Rng.int rng site.site_arity
    else begin
      let target = Dsim.Rng.float rng !total in
      let acc = ref 0. and picked = ref (site.site_arity - 1) in
      (try
         for i = 0 to site.site_arity - 1 do
           acc := !acc +. w i;
           if !acc > target then begin
             picked := i;
             raise Exit
           end
         done
       with Exit -> ());
      !picked
    end
  in
  make ~name:(Printf.sprintf "weighted(%s)" feature) choose

let by_label routes ~default =
  let pick (site : Choice.site) =
    Option.value ~default (List.assoc_opt site.site_label routes)
  in
  {
    name = "by-label(" ^ String.concat "," (List.map fst routes) ^ ")";
    choose = (fun rng site -> (pick site).choose rng site);
    feedback = (fun ~site ~chosen ~reward -> (pick site).feedback ~site ~chosen ~reward);
  }

let epsilon_mix ~epsilon ~explore ~exploit =
  if epsilon < 0. || epsilon > 1. then invalid_arg "Resolver.epsilon_mix: epsilon out of [0,1]";
  {
    name = Printf.sprintf "mix(%.2f %s | %s)" epsilon explore.name exploit.name;
    choose =
      (fun rng site ->
        if Dsim.Rng.uniform rng < epsilon then explore.choose rng site
        else exploit.choose rng site);
    feedback =
      (fun ~site ~chosen ~reward ->
        explore.feedback ~site ~chosen ~reward;
        exploit.feedback ~site ~chosen ~reward);
  }

let apply t rng choice ~node ~occurrence =
  let site = Choice.site ~node ~occurrence choice in
  let i = t.choose rng site in
  if i < 0 || i >= site.site_arity then
    invalid_arg
      (Printf.sprintf "Resolver.apply: %s answered %d for arity %d at %s" t.name i
         site.site_arity site.site_label);
  (Choice.nth choice i, i)
