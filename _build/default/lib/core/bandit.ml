type algo = Ucb1 of float | Epsilon_greedy of float

type arm_stats = { mutable pulls : int; mutable total : float }

type context_stats = { arms : (int, arm_stats) Hashtbl.t; mutable total_pulls : int }

type t = {
  algo : algo;
  feature_buckets : int;
  contexts : (string, context_stats) Hashtbl.t;
}

let create ?(algo = Ucb1 (sqrt 2.)) ?(feature_buckets = 4) () =
  (match algo with
  | Ucb1 c when c < 0. -> invalid_arg "Bandit.create: negative exploration constant"
  | Epsilon_greedy e when e < 0. || e > 1. -> invalid_arg "Bandit.create: epsilon out of [0,1]"
  | Ucb1 _ | Epsilon_greedy _ -> ());
  if feature_buckets <= 0 then invalid_arg "Bandit.create: feature_buckets must be positive";
  { algo; feature_buckets; contexts = Hashtbl.create 32 }

(* Context key: the label plus each alternative's features quantised
   into [feature_buckets] levels via a squashing transform, so that
   sites describing "similar scenarios" share learned statistics. *)
let context_key t (site : Choice.site) =
  let bucket v =
    let squashed = v /. (1. +. Float.abs v) in
    (* in (-1,1) *)
    let b = int_of_float ((squashed +. 1.) /. 2. *. float_of_int t.feature_buckets) in
    max 0 (min (t.feature_buckets - 1) b)
  in
  let buf = Buffer.create 64 in
  Buffer.add_string buf site.site_label;
  Array.iter
    (fun feats ->
      Buffer.add_char buf '|';
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf k;
          Buffer.add_char buf ':';
          Buffer.add_string buf (string_of_int (bucket v));
          Buffer.add_char buf ';')
        (List.sort (fun (a, _) (b, _) -> String.compare a b) feats))
    site.site_features;
  Buffer.contents buf

let context t site =
  let key = context_key t site in
  match Hashtbl.find_opt t.contexts key with
  | Some c -> c
  | None ->
      let c = { arms = Hashtbl.create 8; total_pulls = 0 } in
      Hashtbl.replace t.contexts key c;
      c

let arm_stats c arm =
  match Hashtbl.find_opt c.arms arm with
  | Some s -> s
  | None ->
      let s = { pulls = 0; total = 0. } in
      Hashtbl.replace c.arms arm s;
      s

let select t rng (site : Choice.site) =
  let c = context t site in
  let n = site.site_arity in
  let unplayed =
    let rec find i = if i >= n then None else if (arm_stats c i).pulls = 0 then Some i else find (i + 1) in
    find 0
  in
  match unplayed with
  | Some i -> i
  | None -> (
      match t.algo with
      | Epsilon_greedy eps when Dsim.Rng.uniform rng < eps -> Dsim.Rng.int rng n
      | Epsilon_greedy _ ->
          let best = ref 0 and best_mean = ref neg_infinity in
          for i = 0 to n - 1 do
            let s = arm_stats c i in
            let m = s.total /. float_of_int s.pulls in
            if m > !best_mean then begin
              best := i;
              best_mean := m
            end
          done;
          !best
      | Ucb1 explore ->
          let ln_total = log (float_of_int (max 1 c.total_pulls)) in
          let best = ref 0 and best_score = ref neg_infinity in
          for i = 0 to n - 1 do
            let s = arm_stats c i in
            let mean = s.total /. float_of_int s.pulls in
            let bonus = explore *. sqrt (ln_total /. float_of_int s.pulls) in
            let score = mean +. bonus in
            if score > !best_score then begin
              best := i;
              best_score := score
            end
          done;
          !best)

let update t site ~arm ~reward =
  let c = context t site in
  let s = arm_stats c arm in
  s.pulls <- s.pulls + 1;
  s.total <- s.total +. reward;
  c.total_pulls <- c.total_pulls + 1

let pulls t site ~arm = (arm_stats (context t site) arm).pulls

let mean_reward t site ~arm =
  let s = arm_stats (context t site) arm in
  if s.pulls = 0 then 0. else s.total /. float_of_int s.pulls

let contexts t = Hashtbl.length t.contexts
let context_pulls t site = (context t site).total_pulls

let to_resolver t =
  Resolver.make ~name:"bandit"
    ~feedback:(fun ~site ~chosen ~reward -> update t site ~arm:chosen ~reward)
    (fun rng site -> select t rng site)

let exploit t (site : Choice.site) =
  match Hashtbl.find_opt t.contexts (context_key t site) with
  | None -> 0
  | Some c ->
      let best = ref 0 and best_mean = ref neg_infinity in
      for i = 0 to site.site_arity - 1 do
        match Hashtbl.find_opt c.arms i with
        | Some s when s.pulls > 0 ->
            let m = s.total /. float_of_int s.pulls in
            if m > !best_mean then begin
              best := i;
              best_mean := m
            end
        | Some _ | None -> ()
      done;
      !best

let exploit_resolver t =
  Resolver.make ~name:"bandit-exploit" (fun _rng site -> exploit t site)
