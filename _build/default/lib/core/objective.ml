type 'view t = { name : string; weight : float; score : 'view -> float }

let v ~name ?(weight = 1.0) score =
  if weight <= 0. then invalid_arg "Objective.v: weight must be positive";
  { name; weight; score }

let score t view = t.weight *. t.score view
let total ts view = List.fold_left (fun acc t -> acc +. score t view) 0. ts
let map_view f t = { t with score = (fun view -> t.score (f view)) }

let constrained t ~penalty ok =
  {
    t with
    name = t.name ^ "+constraint";
    score = (fun view -> (if ok view then 0. else -.penalty) +. t.score view);
  }
