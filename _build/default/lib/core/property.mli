(** Safety and liveness properties (paper §3.2).

    Safety properties must hold in every reachable view; the engine
    checks them after each event and the explorer checks them in every
    explored future. Liveness properties are approximated, as in
    CrystalBall, by bounded-horizon reachability: the explorer reports
    a liveness concern if no explored future reaches a view satisfying
    the predicate. *)

type kind = Safety | Liveness

type 'view t = { name : string; kind : kind; holds : 'view -> bool }

val safety : name:string -> ('view -> bool) -> 'view t
val liveness : name:string -> ('view -> bool) -> 'view t

val check : 'view t list -> 'view -> 'view t list
(** Safety properties violated by the view (liveness ones are never
    reported here — they need a horizon, see [Mc.Explorer]). *)

val safety_holds : 'view t list -> 'view -> bool
(** [true] iff every safety property holds. *)

val map_view : ('b -> 'a) -> 'a t -> 'b t

val kind_to_string : kind -> string
