type 'a alternative = {
  value : 'a;
  features : (string * float) list;
  describe : string;
}

type 'a t = { label : string; alternatives : 'a alternative list }

let alt ?(features = []) ?(describe = "-") value = { value; features; describe }

let make ~label alternatives =
  if String.length label = 0 then invalid_arg "Choice.make: empty label";
  if alternatives = [] then invalid_arg "Choice.make: no alternatives";
  { label; alternatives }

let of_values ~label ?(feature = fun _ -> []) values =
  make ~label (List.map (fun v -> alt ~features:(feature v) v) values)

let arity t = List.length t.alternatives

let nth t i =
  match List.nth_opt t.alternatives i with
  | Some a -> a.value
  | None -> invalid_arg "Choice.nth: index out of range"

let label t = t.label
let feature_matrix t = Array.of_list (List.map (fun a -> a.features) t.alternatives)

type site = {
  site_label : string;
  site_node : int;
  site_occurrence : int;
  site_arity : int;
  site_features : (string * float) list array;
}

let site ~node ~occurrence t =
  {
    site_label = t.label;
    site_node = node;
    site_occurrence = occurrence;
    site_arity = arity t;
    site_features = feature_matrix t;
  }

let feature s ~alt name =
  if alt < 0 || alt >= Array.length s.site_features then None
  else List.assoc_opt name s.site_features.(alt)

let pp_site ppf s =
  Format.fprintf ppf "%s@node%d#%d(%d alts)" s.site_label s.site_node s.site_occurrence
    s.site_arity
