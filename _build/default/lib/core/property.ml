type kind = Safety | Liveness

type 'view t = { name : string; kind : kind; holds : 'view -> bool }

let safety ~name holds = { name; kind = Safety; holds }
let liveness ~name holds = { name; kind = Liveness; holds }

let check props view =
  List.filter (fun p -> p.kind = Safety && not (p.holds view)) props

let safety_holds props view = check props view = []
let map_view f t = { t with holds = (fun view -> t.holds (f view)) }
let kind_to_string = function Safety -> "safety" | Liveness -> "liveness"
