(** Learned choice resolution (paper §3.4: "using choices based on
    previous similar scenarios as a fast alternative, and updating the
    choices as more information becomes available").

    A bandit keeps per-(context, arm) reward statistics and balances
    exploration against exploitation. Contexts are derived from a
    choice site by bucketing its feature vector, so decisions learned in
    one situation transfer to similar ones. *)

type algo =
  | Ucb1 of float  (** exploration constant, typically [sqrt 2.] *)
  | Epsilon_greedy of float  (** exploration probability in [0,1] *)

type t

val create : ?algo:algo -> ?feature_buckets:int -> unit -> t
(** [algo] defaults to [Ucb1 (sqrt 2.)]. [feature_buckets] controls how
    coarsely features are quantised into contexts (default 4). *)

val select : t -> Dsim.Rng.t -> Choice.site -> int
(** Picks an arm; unplayed arms are tried first (in index order). *)

val update : t -> Choice.site -> arm:int -> reward:float -> unit
(** Records an observed reward for the arm in the site's context. *)

val pulls : t -> Choice.site -> arm:int -> int
(** How many rewards this (context, arm) has absorbed. *)

val mean_reward : t -> Choice.site -> arm:int -> float
(** 0 if never played. *)

val contexts : t -> int
(** Number of distinct contexts seen so far. *)

val context_pulls : t -> Choice.site -> int
(** Total rewards absorbed by the site's context across all arms — a
    cheap "how trained am I here?" measure for hybrid fast paths. *)

val to_resolver : t -> Resolver.t
(** Wraps the bandit as a {!Resolver.t}; its [feedback] feeds
    {!update}. *)

val exploit : t -> Choice.site -> int
(** Pure exploitation: the arm with the best mean reward in the site's
    context; unplayed arms never win, and a context never seen answers
    0. Used to freeze a trained bandit into a deployable policy. *)

val exploit_resolver : t -> Resolver.t
(** {!exploit} as a resolver; feedback is ignored (the policy is
    frozen). *)
