(** Offline precomputation (paper §3.4: "precompute the impact of
    actions on system behaviors before the system is deployed").

    A playbook is trained before deployment: several simulated episodes
    run under full predictive lookahead, and every lookahead's
    per-alternative scores train a contextual bandit. The trained
    bandit is then frozen into a zero-cost, exploitation-only resolver
    for production — the learned counterpart of shipping a hand-tuned
    policy, except it was derived from the application's own exposed
    objectives. *)

module Make (App : Proto.App_intf.APP) : sig
  module E : module type of Engine.Sim.Make (App)

  type t

  val train :
    ?lookahead:E.lookahead ->
    ?episodes:int ->
    ?seed:int ->
    topology:Net.Topology.t ->
    scenario:(E.t -> unit) ->
    unit ->
    t
  (** [train ~topology ~scenario ()] runs [episodes] (default 3)
      simulated deployments, each driven by [scenario] on a fresh
      engine with a distinct seed (base [seed], default 1000), with
      full lookahead resolution training the playbook's bandit.
      [lookahead] defaults to {!E.default_lookahead}. *)

  val resolver : t -> Core.Resolver.t
  (** The frozen policy: pure exploitation of what training learned. *)

  val contexts_learned : t -> int
  val training_forks : t -> int
  (** Total speculative branches simulated during training — the
      offline cost that production no longer pays. *)
end
