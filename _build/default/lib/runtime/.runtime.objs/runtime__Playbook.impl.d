lib/runtime/playbook.ml: Core Engine Option Proto
