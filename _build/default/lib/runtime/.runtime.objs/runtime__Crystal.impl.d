lib/runtime/crystal.ml: Config Dsim Engine Float Format List Mc Net Proto String Wire
