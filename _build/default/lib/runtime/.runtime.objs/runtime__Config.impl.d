lib/runtime/config.ml:
