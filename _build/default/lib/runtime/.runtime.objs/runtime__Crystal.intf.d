lib/runtime/crystal.mli: Config Dsim Engine Mc Proto Wire
