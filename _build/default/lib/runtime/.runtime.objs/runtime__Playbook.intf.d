lib/runtime/playbook.mli: Core Engine Net Proto
