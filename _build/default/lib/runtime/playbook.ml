module Make (App : Proto.App_intf.APP) = struct
  module E = Engine.Sim.Make (App)

  type t = { bandit : Core.Bandit.t; mutable forks : int }

  (* Large enough that the in-training cache never short-circuits the
     lookahead: every decision during training is a full prediction,
     and every prediction trains the bandit. *)
  let never_hit = 1_000_000

  let train ?lookahead ?(episodes = 3) ?(seed = 1000) ~topology ~scenario () =
    if episodes <= 0 then invalid_arg "Playbook.train: episodes must be positive";
    let t = { bandit = Core.Bandit.create (); forks = 0 } in
    let cfg = Option.value ~default:E.default_lookahead lookahead in
    for episode = 0 to episodes - 1 do
      let eng = E.create ~seed:(seed + episode) ~topology () in
      E.set_lookahead eng ~cache:(t.bandit, never_hit) cfg;
      scenario eng;
      t.forks <- t.forks + (E.stats eng).E.lookahead_forks
    done;
    t

  let resolver t = Core.Bandit.exploit_resolver t.bandit
  let contexts_learned t = Core.Bandit.contexts t.bandit
  let training_forks t = t.forks
end
