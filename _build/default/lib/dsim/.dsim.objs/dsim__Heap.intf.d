lib/dsim/heap.mli:
