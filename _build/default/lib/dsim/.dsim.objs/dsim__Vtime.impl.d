lib/dsim/vtime.ml: Float Format
