lib/dsim/rng.mli:
