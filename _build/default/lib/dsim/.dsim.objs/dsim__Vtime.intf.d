lib/dsim/vtime.mli: Format
