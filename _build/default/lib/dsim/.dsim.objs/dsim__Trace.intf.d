lib/dsim/trace.mli: Format Vtime
