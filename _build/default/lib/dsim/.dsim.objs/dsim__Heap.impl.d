lib/dsim/heap.ml: Array Int List
