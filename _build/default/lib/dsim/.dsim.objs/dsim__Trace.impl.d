lib/dsim/trace.ml: Format List Queue String Vtime
