lib/dsim/stats.ml: Array Float Format List Stdlib
