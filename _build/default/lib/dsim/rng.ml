(* SplitMix64 (Steele, Lea, Flood; JDK SplittableRandom). Chosen for its
   tiny state, good statistical quality, and a well-defined split
   operation, which lets us hand independent streams to every node. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }
let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the low 62 bits to avoid modulo bias. *)
  let mask = max_int in
  let rec loop () =
    let v = Int64.to_int (Int64.logand (bits64 t) 0x3FFFFFFFFFFFFFFFL) in
    let r = v mod n in
    if v - r > mask - n + 1 then loop () else r
  in
  loop ()

let uniform t =
  (* 53 random bits into [0,1). *)
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  v *. 0x1p-53

let float t x = uniform t *. x
let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t mean =
  if mean <= 0. then invalid_arg "Rng.exponential: mean must be positive";
  let u = 1. -. uniform t in
  -.mean *. log u

let pick_array t a =
  if Array.length a = 0 then invalid_arg "Rng.pick_array: empty";
  a.(int t (Array.length a))

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty"
  | xs -> pick_array t (Array.of_list xs)

let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let sample_without_replacement t k xs =
  let shuffled = shuffle t xs in
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  take k shuffled
