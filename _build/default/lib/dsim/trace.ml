type level = Debug | Info | Warn | Error

type record = { time : Vtime.t; level : level; component : string; message : string }

type t = { capacity : int; q : record Queue.t; mutable total : int }

let create ?(capacity = 100_000) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; q = Queue.create (); total = 0 }

let log t time level ~component message =
  Queue.push { time; level; component; message } t.q;
  t.total <- t.total + 1;
  if Queue.length t.q > t.capacity then ignore (Queue.pop t.q)

let logf t time level ~component fmt =
  Format.kasprintf (fun message -> log t time level ~component message) fmt

let records t = List.of_seq (Queue.to_seq t.q)
let count t = t.total

let contains_substring haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  if ln = 0 then true
  else
    let rec at i = if i + ln > lh then false else String.sub haystack i ln = needle || at (i + 1) in
    at 0

let find t ~component ~substring =
  List.filter
    (fun r -> String.equal r.component component && contains_substring r.message substring)
    (records t)

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let pp_record ppf r =
  Format.fprintf ppf "[%a] %-5s %s: %s" Vtime.pp r.time (level_to_string r.level) r.component
    r.message
