(** Deterministic pseudo-random number generator (SplitMix64).

    Every source of randomness in the simulator flows from one of these
    generators, seeded explicitly, so that whole experiments are
    bit-reproducible. The generator is mutable; use {!split} to derive
    independent streams (e.g. one per node) from a parent stream. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Two generators created with the
    same seed produce identical streams. *)

val copy : t -> t
(** Independent copy sharing the current position. *)

val split : t -> t
(** [split rng] advances [rng] and returns a new generator whose stream
    is statistically independent of the parent's subsequent output. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int rng n] is uniform in [\[0, n)]. @raise Invalid_argument if
    [n <= 0]. *)

val float : t -> float -> float
(** [float rng x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val uniform : t -> float
(** Uniform in [\[0, 1)]. *)

val exponential : t -> float -> float
(** [exponential rng mean] samples an exponential distribution with the
    given mean. @raise Invalid_argument if [mean <= 0]. *)

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. @raise Invalid_argument on
    the empty list. *)

val pick_array : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> 'a list -> 'a list
(** [sample_without_replacement rng k xs] is [k] distinct elements of
    [xs] in random order, or a permutation of [xs] if it has fewer than
    [k] elements. *)
