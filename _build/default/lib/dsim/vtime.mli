(** Virtual time for the discrete-event simulator.

    Time is a non-negative number of simulated seconds, represented as a
    float. All simulator components use this module rather than raw
    floats so that units and comparisons stay consistent. *)

type t

val zero : t

val of_seconds : float -> t
(** [of_seconds s] is the instant [s] seconds after the origin.
    @raise Invalid_argument if [s] is negative or not finite. *)

val of_ms : float -> t
(** [of_ms ms] is [of_seconds (ms /. 1000.)]. *)

val to_seconds : t -> float

val to_ms : t -> float

val add : t -> float -> t
(** [add t dt] is the instant [dt] seconds after [t]. [dt] must be
    non-negative and finite. *)

val diff : t -> t -> float
(** [diff later earlier] is the elapsed seconds between the two
    instants; negative if [later] precedes [earlier]. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val ( <= ) : t -> t -> bool

val ( < ) : t -> t -> bool

val min : t -> t -> t

val max : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Prints as seconds with millisecond precision, e.g. ["12.345s"]. *)
