type t = float

let zero = 0.

let check_finite what x =
  if not (Float.is_finite x) then invalid_arg (what ^ ": not finite")

let of_seconds s =
  check_finite "Vtime.of_seconds" s;
  if s < 0. then invalid_arg "Vtime.of_seconds: negative";
  s

let of_ms ms = of_seconds (ms /. 1000.)
let to_seconds t = t
let to_ms t = t *. 1000.

let add t dt =
  check_finite "Vtime.add" dt;
  if dt < 0. then invalid_arg "Vtime.add: negative delta";
  t +. dt

let diff later earlier = later -. earlier
let compare = Float.compare
let equal = Float.equal
let ( <= ) a b = compare a b <= 0
let ( < ) a b = compare a b < 0
let min a b = if a <= b then a else b
let max a b = if a <= b then b else a
let pp ppf t = Format.fprintf ppf "%.3fs" t
