(** Streaming summary statistics and simple histograms.

    Used by the benchmark harness and the network model to summarise
    latency samples, dissemination times, and so on. *)

type t
(** Mutable accumulator of float samples. *)

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** 0 if no samples. *)

val variance : t -> float
(** Population variance; 0 with fewer than two samples. *)

val stddev : t -> float

val min : t -> float
(** @raise Invalid_argument if empty. *)

val max : t -> float
(** @raise Invalid_argument if empty. *)

val sum : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,100\]], linear interpolation.
    @raise Invalid_argument if empty or [p] out of range. *)

val median : t -> float

val to_list : t -> float list
(** Samples in insertion order. *)

val merge : t -> t -> t
(** Fresh accumulator containing both sample sets. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line [n/mean/p50/p99/max] summary. *)

(** Fixed-bucket histogram over a closed range. *)
module Histogram : sig
  type h

  val create : lo:float -> hi:float -> buckets:int -> h
  (** @raise Invalid_argument unless [lo < hi] and [buckets > 0]. *)

  val add : h -> float -> unit
  (** Out-of-range samples clamp to the first or last bucket. *)

  val counts : h -> int array

  val bucket_bounds : h -> int -> float * float
  (** Closed-open bounds of bucket [i]. *)

  val total : h -> int
end
