type t = {
  mutable samples : float list; (* reversed insertion order *)
  mutable n : int;
  mutable total : float;
  mutable total_sq : float;
  mutable lo : float;
  mutable hi : float;
}

let create () =
  { samples = []; n = 0; total = 0.; total_sq = 0.; lo = infinity; hi = neg_infinity }

let add t x =
  t.samples <- x :: t.samples;
  t.n <- t.n + 1;
  t.total <- t.total +. x;
  t.total_sq <- t.total_sq +. (x *. x);
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x

let count t = t.n
let sum t = t.total
let mean t = if t.n = 0 then 0. else t.total /. float_of_int t.n

let variance t =
  if t.n < 2 then 0.
  else
    let m = mean t in
    Float.max 0. ((t.total_sq /. float_of_int t.n) -. (m *. m))

let stddev t = sqrt (variance t)

let min t = if t.n = 0 then invalid_arg "Stats.min: empty" else t.lo
let max t = if t.n = 0 then invalid_arg "Stats.max: empty" else t.hi

let percentile t p =
  if t.n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: out of range";
  let sorted = List.sort Float.compare t.samples in
  let a = Array.of_list sorted in
  let rank = p /. 100. *. float_of_int (t.n - 1) in
  let lo_idx = int_of_float (Float.floor rank) in
  let hi_idx = Stdlib.min (t.n - 1) (lo_idx + 1) in
  let frac = rank -. float_of_int lo_idx in
  a.(lo_idx) +. (frac *. (a.(hi_idx) -. a.(lo_idx)))

let median t = percentile t 50.
let to_list t = List.rev t.samples

let merge a b =
  let t = create () in
  List.iter (add t) (to_list a);
  List.iter (add t) (to_list b);
  t

let pp_summary ppf t =
  if t.n = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f" t.n (mean t)
      (median t) (percentile t 99.) (max t)

module Histogram = struct
  type h = { lo : float; hi : float; width : float; counts : int array }

  let create ~lo ~hi ~buckets =
    if not (lo < hi) then invalid_arg "Histogram.create: lo must be < hi";
    if buckets <= 0 then invalid_arg "Histogram.create: buckets must be positive";
    { lo; hi; width = (hi -. lo) /. float_of_int buckets; counts = Array.make buckets 0 }

  let add h x =
    let n = Array.length h.counts in
    let i = int_of_float ((x -. h.lo) /. h.width) in
    let i = Stdlib.max 0 (Stdlib.min (n - 1) i) in
    h.counts.(i) <- h.counts.(i) + 1

  let counts h = Array.copy h.counts

  let bucket_bounds h i =
    let lo = h.lo +. (float_of_int i *. h.width) in
    (lo, lo +. h.width)

  let total h = Array.fold_left ( + ) 0 h.counts
end
