(** Bounded in-memory trace of simulation events.

    Each record carries the virtual time at which it was produced, a
    severity, a component tag (e.g. ["engine"], ["steering"]) and a
    message. Traces are consulted by tests and printed by the CLI's
    [--verbose] mode; the simulator itself never reads them back. *)

type level = Debug | Info | Warn | Error

type record = { time : Vtime.t; level : level; component : string; message : string }

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the number of retained records (default 100_000);
    the oldest records are discarded first. *)

val log : t -> Vtime.t -> level -> component:string -> string -> unit

val logf :
  t -> Vtime.t -> level -> component:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val records : t -> record list
(** Retained records, oldest first. *)

val count : t -> int
(** Total records ever logged, including discarded ones. *)

val find : t -> component:string -> substring:string -> record list
(** Retained records from [component] whose message contains
    [substring]. *)

val level_to_string : level -> string

val pp_record : Format.formatter -> record -> unit
