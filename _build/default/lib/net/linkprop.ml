(** End-to-end path properties between two endpoints.

    [latency] is one-way propagation delay in seconds, [bandwidth] is
    the bottleneck capacity in bytes per second, [loss] is the
    end-to-end drop probability in [0,1]. *)

type t = { latency : float; bandwidth : float; loss : float }

let v ~latency ~bandwidth ~loss =
  if latency < 0. then invalid_arg "Linkprop.v: negative latency";
  if bandwidth <= 0. then invalid_arg "Linkprop.v: bandwidth must be positive";
  if loss < 0. || loss > 1. then invalid_arg "Linkprop.v: loss out of [0,1]";
  { latency; bandwidth; loss }

(** Series composition of two path segments: latencies add, the
    narrower link bounds bandwidth, losses compose independently. *)
let compose a b =
  {
    latency = a.latency +. b.latency;
    bandwidth = Float.min a.bandwidth b.bandwidth;
    loss = 1. -. ((1. -. a.loss) *. (1. -. b.loss));
  }

let ideal = { latency = 0.; bandwidth = Float.max_float; loss = 0. }

(** Time for [bytes] to cross the path: propagation plus transmission. *)
let transfer_time t ~bytes = t.latency +. (float_of_int bytes /. t.bandwidth)

let equal a b =
  Float.equal a.latency b.latency
  && Float.equal a.bandwidth b.bandwidth
  && Float.equal a.loss b.loss

let pp ppf t =
  Format.fprintf ppf "{lat=%.1fms bw=%.0fKB/s loss=%.3f}" (t.latency *. 1000.)
    (t.bandwidth /. 1024.) t.loss
