type t = { size : int; path : int -> int -> Linkprop.t }

let size t = t.size

let check t a b =
  if a < 0 || a >= t.size then invalid_arg "Topology.path: src out of range";
  if b < 0 || b >= t.size then invalid_arg "Topology.path: dst out of range"

let path t a b =
  check t a b;
  if a = b then Linkprop.ideal else t.path a b

let uniform ~n prop =
  if n <= 0 then invalid_arg "Topology.uniform: n must be positive";
  { size = n; path = (fun _ _ -> prop) }

let of_matrix m =
  let n = Array.length m in
  if n = 0 then invalid_arg "Topology.of_matrix: empty";
  Array.iter (fun row -> if Array.length row <> n then invalid_arg "Topology.of_matrix: not square") m;
  { size = n; path = (fun a b -> m.(a).(b)) }

let star ~n ~hub_spoke =
  if n <= 1 then invalid_arg "Topology.star: need at least 2 endpoints";
  let path a b =
    if a = 0 || b = 0 then hub_spoke else Linkprop.compose hub_spoke hub_spoke
  in
  { size = n; path }

(* Floyd–Warshall on latency; bandwidth/loss composed along the chosen
   shortest path. n stays small (<= a few hundred) in our experiments. *)
let all_pairs_shortest n direct =
  let dist = Array.init n (fun a -> Array.init n (fun b -> direct a b)) in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        match (dist.(i).(k), dist.(k).(j)) with
        | Some ik, Some kj ->
            let via = Linkprop.compose ik kj in
            let better =
              match dist.(i).(j) with
              | None -> true
              | Some d -> via.Linkprop.latency < d.Linkprop.latency
            in
            if better then dist.(i).(j) <- Some via
        | _ -> ()
      done
    done
  done;
  dist

let random_waxman ~rng ~n ?(alpha = 0.4) ?(beta = 0.4) ?(base_latency = 0.01)
    ?(bandwidth = 1_000_000.) ?(loss = 0.) () =
  if n <= 1 then invalid_arg "Topology.random_waxman: need at least 2 endpoints";
  let coords = Array.init n (fun _ -> (Dsim.Rng.uniform rng, Dsim.Rng.uniform rng)) in
  let distance a b =
    let xa, ya = coords.(a) and xb, yb = coords.(b) in
    sqrt (((xa -. xb) ** 2.) +. ((ya -. yb) ** 2.))
  in
  let max_d = sqrt 2. in
  let direct a b =
    if a = b then Some Linkprop.ideal
    else
      let d = distance a b in
      let p = alpha *. exp (-.d /. (beta *. max_d)) in
      (* Symmetric edge decision: only sample for a < b, mirror otherwise. *)
      let lo = min a b and hi = max a b in
      let edge_rng = Dsim.Rng.create ((lo * 65_537) + hi) in
      ignore (Dsim.Rng.uniform edge_rng);
      let keep = Dsim.Rng.uniform edge_rng < p in
      if keep then Some (Linkprop.v ~latency:(base_latency +. (d *. 0.05)) ~bandwidth ~loss)
      else None
  in
  let dist = all_pairs_shortest n direct in
  let fallback =
    Linkprop.v ~latency:(base_latency +. (max_d *. 0.1)) ~bandwidth:(bandwidth /. 4.) ~loss
  in
  let path a b = match dist.(a).(b) with Some p -> p | None -> fallback in
  { size = n; path }

type transit_stub_params = {
  transits : int;
  stubs_per_transit : int;
  clients_per_stub : int;
  client_stub_latency : float;
  stub_transit_latency : float;
  transit_transit_latency : float;
  client_bandwidth : float;
  core_bandwidth : float;
  loss : float;
}

let default_transit_stub =
  {
    transits = 4;
    stubs_per_transit = 4;
    clients_per_stub = 4;
    client_stub_latency = 0.002;
    stub_transit_latency = 0.008;
    transit_transit_latency = 0.030;
    client_bandwidth = 1_250_000.;
    (* 10 Mbit/s *)
    core_bandwidth = 12_500_000.;
    (* 100 Mbit/s *)
    loss = 0.;
  }

let stub_of p endpoint =
  let per_stub = p.clients_per_stub in
  endpoint / per_stub

let transit_of p endpoint = stub_of p endpoint / p.stubs_per_transit

let transit_stub ?jitter_rng p =
  if p.transits <= 0 || p.stubs_per_transit <= 0 || p.clients_per_stub <= 0 then
    invalid_arg "Topology.transit_stub: all counts must be positive";
  let n = p.transits * p.stubs_per_transit * p.clients_per_stub in
  let salt =
    match jitter_rng with
    | None -> 0
    | Some rng -> Int64.to_int (Int64.logand (Dsim.Rng.bits64 rng) 0x3FFFFFFFL)
  in
  let jitter base key =
    match jitter_rng with
    | None -> base
    | Some _ ->
        (* Per-pair deterministic jitter in [0.8, 1.2): the salt is drawn
           once from the topology rng, so runs remain reproducible while
           distinct pairs get distinct latencies. *)
        let local = Dsim.Rng.create (key + salt) in
        base *. (0.8 +. (0.4 *. Dsim.Rng.uniform local))
  in
  let ring_hops a b =
    let d = abs (a - b) in
    min d (p.transits - d)
  in
  let path a b =
    let sa = stub_of p a and sb = stub_of p b in
    let ta = transit_of p a and tb = transit_of p b in
    let key = (a * 1_000_003) + b in
    let access = Linkprop.v ~latency:(jitter p.client_stub_latency key) ~bandwidth:p.client_bandwidth ~loss:p.loss in
    if sa = sb then
      (* Same stub: client -> stub router -> client. *)
      Linkprop.compose access
        (Linkprop.v ~latency:(jitter p.client_stub_latency (key + 1)) ~bandwidth:p.client_bandwidth ~loss:p.loss)
    else
      let up = Linkprop.v ~latency:(jitter p.stub_transit_latency (key + 2)) ~bandwidth:p.core_bandwidth ~loss:0. in
      let hops = if ta = tb then 0 else ring_hops ta tb in
      let backbone =
        Linkprop.v
          ~latency:(jitter (float_of_int (max hops 1) *. p.transit_transit_latency) (key + 3))
          ~bandwidth:p.core_bandwidth ~loss:0.
      in
      let backbone = if ta = tb then Linkprop.v ~latency:0.0005 ~bandwidth:p.core_bandwidth ~loss:0. else backbone in
      let down = Linkprop.v ~latency:(jitter p.stub_transit_latency (key + 4)) ~bandwidth:p.core_bandwidth ~loss:0. in
      let access_b =
        Linkprop.v ~latency:(jitter p.client_stub_latency (key + 5)) ~bandwidth:p.client_bandwidth ~loss:p.loss
      in
      List.fold_left Linkprop.compose access [ up; backbone; down; access_b ]
  in
  { size = n; path }

let degrade t f =
  { size = t.size; path = (fun a b -> f a b (t.path a b)) }
