type verdict = Deliver of float | Drop of string

type t = {
  topo : Topology.t;
  jitter : float;
  serialize_access : bool;
  rng : Dsim.Rng.t;
  overrides : (int * int, Linkprop.t) Hashtbl.t;
  isolated : (int, unit) Hashtbl.t;
  uplink_free : (int, float) Hashtbl.t;  (* endpoint -> time its uplink frees up *)
  downlink_free : (int, float) Hashtbl.t;
}

let create ?(jitter = 0.05) ?(serialize_access = true) ~rng topo =
  if jitter < 0. then invalid_arg "Netem.create: negative jitter";
  {
    topo;
    jitter;
    serialize_access;
    rng;
    overrides = Hashtbl.create 64;
    isolated = Hashtbl.create 16;
    uplink_free = Hashtbl.create 64;
    downlink_free = Hashtbl.create 64;
  }

let topology t = t.topo

let copy t =
  {
    t with
    rng = Dsim.Rng.copy t.rng;
    overrides = Hashtbl.copy t.overrides;
    isolated = Hashtbl.copy t.isolated;
    uplink_free = Hashtbl.copy t.uplink_free;
    downlink_free = Hashtbl.copy t.downlink_free;
  }

let blackhole = Linkprop.v ~latency:0.001 ~bandwidth:1. ~loss:1.

let path t ~src ~dst =
  if Hashtbl.mem t.isolated src || Hashtbl.mem t.isolated dst then blackhole
  else
    match Hashtbl.find_opt t.overrides (src, dst) with
    | Some p -> p
    | None -> Topology.path t.topo src dst

(* Occupies [endpoint]'s link (up or down) for [tx] seconds starting no
   earlier than [now]; returns the extra queueing delay incurred. *)
let enqueue table endpoint ~now ~tx =
  let free_at = Option.value ~default:now (Hashtbl.find_opt table endpoint) in
  let start = Float.max now free_at in
  Hashtbl.replace table endpoint (start +. tx);
  start -. now

let judge t ~now ~src ~dst ~bytes =
  let p = path t ~src ~dst in
  if Dsim.Rng.uniform t.rng < p.Linkprop.loss then Drop "loss"
  else begin
    let tx = float_of_int bytes /. p.Linkprop.bandwidth in
    let queueing =
      if not t.serialize_access then 0.
      else
        let up = enqueue t.uplink_free src ~now ~tx in
        let down = enqueue t.downlink_free dst ~now:(now +. up) ~tx in
        up +. down
    in
    let base = p.Linkprop.latency +. tx +. queueing in
    let noise =
      if t.jitter = 0. then 1.
      else
        (* Clamp multiplicative noise so delays never go negative. *)
        Float.max 0.1 (1. +. (t.jitter *. ((2. *. Dsim.Rng.uniform t.rng) -. 1.)))
    in
    Deliver (base *. noise)
  end

let occupy_access t ~endpoint ~now ~bytes =
  if t.serialize_access then begin
    (* Access bandwidth approximated by the endpoint's cheapest outgoing
       path (its own access link bounds every path). *)
    let n = Topology.size t.topo in
    let bw = ref infinity in
    for other = 0 to n - 1 do
      if other <> endpoint then begin
        let p = path t ~src:endpoint ~dst:other in
        if p.Linkprop.bandwidth < !bw then bw := p.Linkprop.bandwidth
      end
    done;
    let bw = if Float.is_finite !bw then !bw else 1_000_000. in
    let tx = float_of_int bytes /. bw in
    ignore (enqueue t.uplink_free endpoint ~now ~tx);
    ignore (enqueue t.downlink_free endpoint ~now ~tx)
  end

let set_override t ~src ~dst p = Hashtbl.replace t.overrides (src, dst) p
let clear_override t ~src ~dst = Hashtbl.remove t.overrides (src, dst)
let cut t ~src ~dst = set_override t ~src ~dst blackhole

let cut_bidirectional t a b =
  cut t ~src:a ~dst:b;
  cut t ~src:b ~dst:a

let heal t ~src ~dst = clear_override t ~src ~dst
let isolate t e = Hashtbl.replace t.isolated e ()
let rejoin t e = Hashtbl.remove t.isolated e
let is_isolated t e = Hashtbl.mem t.isolated e
