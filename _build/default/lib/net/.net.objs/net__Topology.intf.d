lib/net/topology.mli: Dsim Linkprop
