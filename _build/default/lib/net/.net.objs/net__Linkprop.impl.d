lib/net/linkprop.ml: Float Format
