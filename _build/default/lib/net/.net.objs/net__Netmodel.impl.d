lib/net/netmodel.ml: Dsim Float Hashtbl Linkprop List
