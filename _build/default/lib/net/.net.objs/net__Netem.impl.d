lib/net/netem.ml: Dsim Float Hashtbl Linkprop Option Topology
