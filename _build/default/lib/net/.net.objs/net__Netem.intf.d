lib/net/netem.mli: Dsim Linkprop Topology
