lib/net/topology.ml: Array Dsim Int64 Linkprop List
