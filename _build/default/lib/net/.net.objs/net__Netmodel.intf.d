lib/net/netmodel.mli: Dsim Linkprop
