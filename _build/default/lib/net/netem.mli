(** Network emulator: turns a static {!Topology} into per-message
    delivery decisions, with dynamic overrides for experiments
    (degraded links, partitions, crashed endpoints).

    This is the ModelNet substitute: the engine asks it, for each
    outbound message, whether the message arrives and after how long. *)

type t

type verdict =
  | Deliver of float  (** arrives after this many seconds *)
  | Drop of string  (** lost; the string names the cause *)

val create : ?jitter:float -> ?serialize_access:bool -> rng:Dsim.Rng.t -> Topology.t -> t
(** [jitter] is the standard deviation of multiplicative delay noise
    (default 0.05, i.e. ±5%); set 0. for fully deterministic delays.
    [serialize_access] (default true) models each endpoint's access
    link as a FIFO queue: concurrent transmissions share the uplink
    (and the receiver's downlink) instead of enjoying it in parallel —
    this is what makes a choked seed a real bottleneck. *)

val topology : t -> Topology.t

val copy : t -> t
(** Independent copy (own RNG and override tables) used when forking a
    simulation for lookahead. *)

val judge : t -> now:float -> src:int -> dst:int -> bytes:int -> verdict
(** Delivery decision for one message sent at time [now] (seconds).
    Consults overrides, then the topology path, then queues the
    transmission on both access links, then samples loss and jitter. *)

val path : t -> src:int -> dst:int -> Linkprop.t
(** Effective path after overrides — what a measurement would see. *)

val occupy_access : t -> endpoint:int -> now:float -> bytes:int -> unit
(** Charges background control traffic (e.g. runtime checkpoints) to
    the endpoint's access links: both its uplink and downlink are busy
    for the transmission time of [bytes] at the endpoint's access
    bandwidth, delaying subsequent application messages. No-op when
    access serialization is disabled. *)

val set_override : t -> src:int -> dst:int -> Linkprop.t -> unit
(** Pins the directed pair to an explicit property. *)

val clear_override : t -> src:int -> dst:int -> unit

val cut : t -> src:int -> dst:int -> unit
(** Makes the directed pair lossy with probability 1 (a partition). *)

val cut_bidirectional : t -> int -> int -> unit

val heal : t -> src:int -> dst:int -> unit
(** Removes any override, restoring the topology path. *)

val isolate : t -> int -> unit
(** Cuts every pair touching the endpoint, both directions. *)

val rejoin : t -> int -> unit
(** Heals every pair touching the endpoint. *)

val is_isolated : t -> int -> bool
