(** Network topologies mapping endpoint pairs to path properties.

    Endpoints are dense integers [0 .. size-1]; the engine assigns one
    endpoint per node. A topology is immutable; dynamic conditions
    (degraded links, partitions) are layered on by {!Netem}. *)

type t

val size : t -> int

val path : t -> int -> int -> Linkprop.t
(** [path t a b] is the end-to-end property from [a] to [b]. The path
    from a node to itself is {!Linkprop.ideal}.
    @raise Invalid_argument if an endpoint is out of range. *)

val uniform : n:int -> Linkprop.t -> t
(** Full mesh in which every distinct pair shares the same property. *)

val of_matrix : Linkprop.t array array -> t
(** Explicit matrix; must be square.
    @raise Invalid_argument otherwise. *)

val star : n:int -> hub_spoke:Linkprop.t -> t
(** Endpoint 0 is the hub; spoke-to-spoke paths relay through it. *)

val random_waxman :
  rng:Dsim.Rng.t ->
  n:int ->
  ?alpha:float ->
  ?beta:float ->
  ?base_latency:float ->
  ?bandwidth:float ->
  ?loss:float ->
  unit ->
  t
(** Waxman random graph on a unit square: edge probability decays with
    Euclidean distance; path properties come from shortest (latency)
    paths. Disconnected pairs are patched with a direct high-latency
    link so that [path] is total. *)

(** Parameters for the two-level transit–stub topology used as the
    "Internet-like" ModelNet substitute. *)
type transit_stub_params = {
  transits : int;  (** transit (backbone) domains arranged in a ring *)
  stubs_per_transit : int;
  clients_per_stub : int;
  client_stub_latency : float;  (** client access one-way delay, seconds *)
  stub_transit_latency : float;
  transit_transit_latency : float;
  client_bandwidth : float;  (** access bandwidth, bytes/second *)
  core_bandwidth : float;
  loss : float;  (** per-access-link loss probability *)
}

val default_transit_stub : transit_stub_params

val transit_stub : ?jitter_rng:Dsim.Rng.t -> transit_stub_params -> t
(** Builds a transit–stub topology with
    [transits * stubs_per_transit * clients_per_stub] endpoints. When
    [jitter_rng] is given, each latency component is perturbed by up to
    ±20% so distinct pairs differ, as on a real WAN. *)

val stub_of : transit_stub_params -> int -> int
(** [stub_of params endpoint] is the index of the stub domain the
    endpoint lives in — useful for failing whole subtrees by locality. *)

val degrade : t -> (int -> int -> Linkprop.t -> Linkprop.t) -> t
(** [degrade t f] derives a topology with every path rewritten by [f];
    used e.g. to slow down all paths touching one endpoint. *)
