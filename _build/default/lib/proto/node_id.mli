(** Node identities.

    A node id doubles as the node's endpoint index in the network
    topology, which keeps the engine's address translation trivial. *)

type t

val of_int : int -> t
(** @raise Invalid_argument if negative. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
