lib/proto/action.ml: Format Node_id
