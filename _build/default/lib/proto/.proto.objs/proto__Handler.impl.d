lib/proto/handler.ml: Action Ctx List Node_id
