lib/proto/ctx.ml: Core Dsim Net Node_id
