lib/proto/node_id.ml: Format Int Map Set
