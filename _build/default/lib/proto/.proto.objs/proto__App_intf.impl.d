lib/proto/app_intf.ml: Action Core Ctx Format Handler Node_id View
