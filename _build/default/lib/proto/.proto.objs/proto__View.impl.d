lib/proto/view.ml: Dsim List Node_id
