(** Guarded message handlers — the NFA style of §3.1.

    An application registers a list of handlers for incoming messages.
    On delivery the engine evaluates every guard; if several handlers
    are applicable the ambiguity itself becomes a choice (label
    ["handler"]) resolved by the installed resolver. Writing several
    small guarded handlers instead of one monolithic one is exactly the
    simplification the paper advocates. *)

type ('state, 'msg) t = {
  name : string;
  guard : 'state -> src:Node_id.t -> 'msg -> bool;
  handle : Ctx.t -> 'state -> src:Node_id.t -> 'msg -> 'state * 'msg Action.t list;
}

let v ?(guard = fun _ ~src:_ _ -> true) ~name handle = { name; guard; handle }

let applicable handlers state ~src msg =
  List.filter (fun h -> h.guard state ~src msg) handlers
