type t = int

let of_int i =
  if i < 0 then invalid_arg "Node_id.of_int: negative";
  i

let to_int t = t
let equal = Int.equal
let compare = Int.compare
let hash t = t
let pp ppf t = Format.fprintf ppf "n%d" t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
