(** Global views: what properties and objectives are evaluated on.

    In the simulation engine the view is exact; in the CrystalBall
    runtime it is reconstructed from collected checkpoints and may be
    partial and stale — the same property and objective code runs on
    both, as the paper requires. *)

type ('state, 'msg) t = {
  time : Dsim.Vtime.t;
  nodes : (Node_id.t * 'state) list;  (** live nodes, ascending id *)
  inflight : (Node_id.t * Node_id.t * 'msg) list;  (** (src, dst, msg) *)
}

let find t id =
  List.find_map (fun (i, s) -> if Node_id.equal i id then Some s else None) t.nodes

let node_count t = List.length t.nodes
let inflight_count t = List.length t.inflight
let ids t = List.map fst t.nodes

(** Fold over node states. *)
let fold f acc t = List.fold_left (fun acc (id, s) -> f acc id s) acc t.nodes

(** Restrict to a subset of nodes — used to build the partial views the
    runtime reconstructs from a checkpoint neighbourhood. *)
let restrict t keep =
  {
    t with
    nodes = List.filter (fun (id, _) -> Node_id.Set.mem id keep) t.nodes;
    inflight =
      List.filter
        (fun (a, b, _) -> Node_id.Set.mem a keep && Node_id.Set.mem b keep)
        t.inflight;
  }
