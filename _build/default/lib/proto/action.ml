(** Outputs of a handler invocation. Handlers are pure: they return the
    new node state plus a list of these actions, which the engine then
    performs. Keeping actions as data (no closures) is what allows the
    engine to fork a simulation for lookahead. *)

type 'msg t =
  | Send of { dst : Node_id.t; msg : 'msg }
      (** enqueue a message; delivery time and loss are decided by the
          network emulator *)
  | Set_timer of { id : string; after : float }
      (** (re)arm the named timer to fire [after] seconds from now;
          re-arming supersedes the previous deadline *)
  | Cancel_timer of string
  | Note of string  (** free-form trace annotation *)

let send ~dst msg = Send { dst; msg }
let set_timer ~id ~after = Set_timer { id; after }
let cancel_timer id = Cancel_timer id
let note fmt = Format.kasprintf (fun s -> Note s) fmt

let pp pp_msg ppf = function
  | Send { dst; msg } -> Format.fprintf ppf "send(%a, %a)" Node_id.pp dst pp_msg msg
  | Set_timer { id; after } -> Format.fprintf ppf "set_timer(%s, %.3fs)" id after
  | Cancel_timer id -> Format.fprintf ppf "cancel_timer(%s)" id
  | Note s -> Format.fprintf ppf "note(%s)" s
