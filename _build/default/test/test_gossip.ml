(* Tests for the gossip protocol and its resolver-expressed policies. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let nid = Proto.Node_id.of_int

module G = Apps.Gossip

module Small_params = struct
  let population = 8
  let round_period = 0.5
  let candidate_cap = 7
end

module App = G.Make (Small_params)
module E = Engine.Sim.Make (App)

let topology =
  Net.Topology.uniform ~n:Small_params.population
    (Net.Linkprop.v ~latency:0.01 ~bandwidth:1_000_000. ~loss:0.)

let make ?(resolver = Core.Resolver.random) ?(seed = 2) () =
  let eng = E.create ~seed ~jitter:0. ~topology () in
  E.set_resolver eng resolver;
  for i = 0 to Small_params.population - 1 do
    E.spawn eng (nid i)
  done;
  E.run_for eng 0.1;
  eng

let known_count eng i =
  match E.state_of eng (nid i) with
  | Some st -> G.Int_set.cardinal (App.known st)
  | None -> -1

let test_msg_bytes_scale () =
  checkb "payload grows" true
    (G.msg_bytes (G.Push { rumors = [ 1; 2; 3 ]; round = 0 })
    > G.msg_bytes (G.Push { rumors = [ 1 ]; round = 0 }))

let test_rumor_spreads_everywhere () =
  let eng = make () in
  E.inject eng ~src:(nid 0) ~dst:(nid 0) (G.Push { rumors = [ 7 ]; round = 0 });
  E.run_for eng 10.;
  for i = 0 to Small_params.population - 1 do
    checki (Printf.sprintf "node %d knows" i) 1 (known_count eng i)
  done

let test_push_back_fills_sender () =
  let eng = make () in
  (* Give node 1 a private rumor, then have node 0 push its own rumor
     to node 1: the push-pull reply must teach node 0 both. *)
  E.inject eng ~src:(nid 1) ~dst:(nid 1) (G.Push { rumors = [ 100 ]; round = 0 });
  E.run_for eng 0.2;
  E.inject eng ~src:(nid 0) ~dst:(nid 0) (G.Push { rumors = [ 200 ]; round = 0 });
  E.run_for eng 0.2;
  E.inject eng ~src:(nid 0) ~dst:(nid 1) (G.Push { rumors = [ 200 ]; round = 0 });
  E.run_for eng 2.;
  checkb "node 0 learned via push-back" true (known_count eng 0 = 2)

let test_silent_nodes_do_not_gossip () =
  let eng = make () in
  E.run_for eng 5.;
  checki "no pushes without rumors" 0 (E.delivered_of_kind eng "push")

let test_rounds_advance () =
  let eng = make () in
  E.run_for eng 3.;
  match E.state_of eng (nid 0) with
  | Some st -> checkb "rounds counted" true (App.round_of st >= 5)
  | None -> Alcotest.fail "node missing"

let test_restricted_resolver_deterministic () =
  let r = G.restricted_resolver ~population:Small_params.population in
  let mk_site round =
    let alternative peer =
      Core.Choice.alt
        ~features:[ ("peer_id", float_of_int peer); ("round", float_of_int round) ]
        peer
    in
    Core.Choice.site ~node:3 ~occurrence:0
      (Core.Choice.make ~label:G.peer_label (List.map alternative [ 0; 1; 2; 4; 5; 6; 7 ]))
  in
  let g = Dsim.Rng.create 1 in
  let a = r.Core.Resolver.choose g (mk_site 5) in
  let b = r.Core.Resolver.choose g (mk_site 5) in
  checki "same round same partner" a b;
  let series = List.sort_uniq Int.compare (List.init 10 (fun round -> r.Core.Resolver.choose g (mk_site round))) in
  checkb "schedule rotates across rounds" true (List.length series > 1)

let test_uniform_knowledge_liveness_definition () =
  let eng = make () in
  E.inject eng ~src:(nid 0) ~dst:(nid 0) (G.Push { rumors = [ 7 ]; round = 0 });
  E.run_for eng 10.;
  let view = E.global_view eng in
  let unmet =
    List.filter
      (fun (p : _ Core.Property.t) ->
        p.Core.Property.kind = Core.Property.Liveness && not (p.Core.Property.holds view))
      App.properties
  in
  checki "uniform knowledge reached" 0 (List.length unmet)

(* ---------- monolithic baseline variant ---------- *)

module BApp = Apps.Gossip_baseline.Make (Small_params)
module BE = Engine.Sim.Make (BApp)

let test_baseline_spreads_without_choices () =
  let eng = BE.create ~seed:2 ~jitter:0. ~topology () in
  BE.set_resolver eng Core.Resolver.random;
  for i = 0 to Small_params.population - 1 do
    BE.spawn eng (nid i)
  done;
  BE.run_for eng 0.1;
  BE.inject eng ~src:(nid 0) ~dst:(nid 0) (G.Push { rumors = [ 7 ]; round = 0 });
  BE.run_for eng 10.;
  List.iter
    (fun (_, st) ->
      checkb "baseline covers" true (Apps.Gossip_baseline.Int_set.mem 7 (BApp.known st)))
    (BE.live_nodes eng);
  checki "policy hard-coded: zero choice points" 0 (BE.stats eng).decisions

let test_baseline_learns_rtt () =
  let eng = BE.create ~seed:2 ~jitter:0. ~topology () in
  BE.set_resolver eng Core.Resolver.random;
  for i = 0 to Small_params.population - 1 do
    BE.spawn eng (nid i)
  done;
  (* Distinct rumors at distinct origins, so push-pull exchanges carry
     diffs in both directions and the probe timings get answered. *)
  BE.inject eng ~after:0.1 ~src:(nid 0) ~dst:(nid 0) (G.Push { rumors = [ 7 ]; round = 0 });
  BE.inject eng ~after:0.15 ~src:(nid 3) ~dst:(nid 3) (G.Push { rumors = [ 8 ]; round = 0 });
  BE.inject eng ~after:0.2 ~src:(nid 5) ~dst:(nid 5) (G.Push { rumors = [ 9 ]; round = 0 });
  BE.run_for eng 20.;
  (* The hand-rolled estimator must have produced at least one RTT
     estimate on the busiest node. *)
  let has_estimate =
    List.exists
      (fun (_, st) ->
        List.exists
          (fun i -> BApp.rtt_estimate st (nid i) <> None)
          (List.init Small_params.population Fun.id))
      (BE.live_nodes eng)
  in
  checkb "estimator fed" true has_estimate

let test_metrics_gossip_pair () =
  match Experiments.Metrics_exp.run_gossip () with
  | Some g ->
      checkb "baseline bigger" true
        (g.baseline.Metrics.Code_metrics.loc > g.choice.Metrics.Code_metrics.loc);
      checkb "baseline more complex" true
        (g.baseline.Metrics.Code_metrics.per_handler
        > g.choice.Metrics.Code_metrics.per_handler)
  | None -> Alcotest.fail "gossip sources not found"

let test_experiment_small () =
  let o =
    Experiments.Gossip_exp.run ~seed:3 ~waves:2 ~scenario:Experiments.Gossip_exp.Uniform
      Experiments.Gossip_exp.Random_peer
  in
  checkb "coverage achieved before deadline" true (o.Experiments.Gossip_exp.max_coverage_s < 30.);
  checkb "messages flowed" true (o.Experiments.Gossip_exp.messages > 0)

let () =
  Alcotest.run "gossip"
    [
      ( "protocol",
        [
          Alcotest.test_case "msg bytes" `Quick test_msg_bytes_scale;
          Alcotest.test_case "spreads" `Quick test_rumor_spreads_everywhere;
          Alcotest.test_case "push-back" `Quick test_push_back_fills_sender;
          Alcotest.test_case "silent without rumors" `Quick test_silent_nodes_do_not_gossip;
          Alcotest.test_case "rounds advance" `Quick test_rounds_advance;
          Alcotest.test_case "liveness definition" `Quick test_uniform_knowledge_liveness_definition;
        ] );
      ( "policies",
        [
          Alcotest.test_case "restricted deterministic" `Quick test_restricted_resolver_deterministic;
          Alcotest.test_case "experiment small" `Slow test_experiment_small;
        ] );
      ( "baseline variant",
        [
          Alcotest.test_case "spreads without choices" `Quick test_baseline_spreads_without_choices;
          Alcotest.test_case "learns rtt" `Quick test_baseline_learns_rtt;
          Alcotest.test_case "code metrics pair" `Quick test_metrics_gossip_pair;
        ] );
    ]
