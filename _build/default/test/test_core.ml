(* Unit and property tests for the choice/resolver/bandit core. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)
let checks = Alcotest.check Alcotest.string

let rng () = Dsim.Rng.create 42

let simple_choice ?(label = "pick") values = Core.Choice.of_values ~label values

(* ---------- Choice ---------- *)

let test_choice_build () =
  let c = simple_choice [ "a"; "b"; "c" ] in
  checki "arity" 3 (Core.Choice.arity c);
  checks "label" "pick" (Core.Choice.label c);
  checks "nth" "b" (Core.Choice.nth c 1);
  Alcotest.check_raises "nth oob" (Invalid_argument "Choice.nth: index out of range") (fun () ->
      ignore (Core.Choice.nth c 7))

let test_choice_invalid () =
  Alcotest.check_raises "empty alts" (Invalid_argument "Choice.make: no alternatives") (fun () ->
      ignore (Core.Choice.make ~label:"x" []));
  Alcotest.check_raises "empty label" (Invalid_argument "Choice.make: empty label") (fun () ->
      ignore (Core.Choice.make ~label:"" [ Core.Choice.alt 1 ]))

let test_choice_features () =
  let c =
    Core.Choice.make ~label:"x"
      [
        Core.Choice.alt ~features:[ ("rtt", 5.) ] 10;
        Core.Choice.alt ~features:[ ("rtt", 7.); ("age", 1.) ] 20;
      ]
  in
  let site = Core.Choice.site ~node:3 ~occurrence:0 c in
  checki "site arity" 2 site.Core.Choice.site_arity;
  checki "site node" 3 site.Core.Choice.site_node;
  checkb "feature" true (Core.Choice.feature site ~alt:1 "rtt" = Some 7.);
  checkb "missing feature" true (Core.Choice.feature site ~alt:0 "age" = None);
  checkb "oob alt" true (Core.Choice.feature site ~alt:5 "rtt" = None)

let test_choice_of_values_feature_fn () =
  let c = Core.Choice.of_values ~label:"n" ~feature:(fun v -> [ ("v", float_of_int v) ]) [ 4; 9 ] in
  let site = Core.Choice.site ~node:0 ~occurrence:0 c in
  checkb "derived feature" true (Core.Choice.feature site ~alt:1 "v" = Some 9.)

(* ---------- Resolver ---------- *)

let apply r c = fst (Core.Resolver.apply r (rng ()) c ~node:0 ~occurrence:0)

let test_resolver_first () = checks "first" "a" (apply Core.Resolver.first (simple_choice [ "a"; "b" ]))

let test_resolver_random_uniformish () =
  let r = Core.Resolver.random in
  let g = rng () in
  let counts = Array.make 3 0 in
  for _ = 1 to 3000 do
    let _, i = Core.Resolver.apply r g (simple_choice [ 0; 1; 2 ]) ~node:0 ~occurrence:0 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter (fun c -> checkb "roughly uniform" true (c > 800 && c < 1200)) counts

let test_resolver_round_robin () =
  let r = Core.Resolver.round_robin () in
  let g = rng () in
  let picks =
    List.init 5 (fun _ ->
        snd (Core.Resolver.apply r g (simple_choice [ "x"; "y"; "z" ]) ~node:0 ~occurrence:0))
  in
  Alcotest.check (Alcotest.list Alcotest.int) "cycles" [ 0; 1; 2; 0; 1 ] picks

let test_resolver_scripted () =
  let r = Core.Resolver.scripted [ ("pick", 1); ("other", 9) ] in
  checks "scripted hit" "b" (apply r (simple_choice [ "a"; "b" ]));
  checks "clamped" "b" (apply r (simple_choice ~label:"other" [ "a"; "b" ]));
  checks "default 0" "a" (apply r (simple_choice ~label:"unlisted" [ "a"; "b" ]))

let test_resolver_greedy () =
  let c =
    Core.Choice.make ~label:"g"
      [
        Core.Choice.alt ~features:[ ("cost", 5.) ] "five";
        Core.Choice.alt ~features:[ ("cost", 2.) ] "two";
        Core.Choice.alt ~features:[ ("cost", 9.) ] "nine";
      ]
  in
  checks "min" "two" (apply (Core.Resolver.greedy ~feature:"cost" ()) c);
  checks "max" "nine" (apply (Core.Resolver.greedy ~feature:"cost" ~maximize:true ()) c)

let test_resolver_greedy_missing_feature_ranks_last () =
  let c =
    Core.Choice.make ~label:"g"
      [ Core.Choice.alt "bare"; Core.Choice.alt ~features:[ ("cost", 100.) ] "costed" ]
  in
  checks "featureless loses" "costed" (apply (Core.Resolver.greedy ~feature:"cost" ()) c)

let test_resolver_greedy_random_ties () =
  let c =
    Core.Choice.make ~label:"g"
      [
        Core.Choice.alt ~features:[ ("cost", 1.) ] 0;
        Core.Choice.alt ~features:[ ("cost", 1.) ] 1;
      ]
  in
  let r = Core.Resolver.greedy ~feature:"cost" () in
  let g = rng () in
  let picks = List.init 100 (fun _ -> fst (Core.Resolver.apply r g c ~node:0 ~occurrence:0)) in
  checkb "both sides chosen" true (List.mem 0 picks && List.mem 1 picks)

let test_resolver_weighted () =
  let c =
    Core.Choice.make ~label:"w"
      [
        Core.Choice.alt ~features:[ ("w", 0.) ] 0;
        Core.Choice.alt ~features:[ ("w", 10.) ] 1;
      ]
  in
  let r = Core.Resolver.weighted ~feature:"w" in
  let g = rng () in
  for _ = 1 to 100 do
    let v, _ = Core.Resolver.apply r g c ~node:0 ~occurrence:0 in
    checki "zero weight never picked" 1 v
  done

let test_resolver_by_label () =
  let r =
    Core.Resolver.by_label
      [ ("pick", Core.Resolver.scripted [ ("pick", 1) ]) ]
      ~default:Core.Resolver.first
  in
  checks "routed" "b" (apply r (simple_choice [ "a"; "b" ]));
  checks "default" "x" (apply r (simple_choice ~label:"other" [ "x"; "y" ]));
  (* Feedback routes to the same resolver. *)
  let bandit = Core.Bandit.create () in
  let routed = Core.Resolver.by_label [ ("pick", Core.Bandit.to_resolver bandit) ] ~default:Core.Resolver.first in
  let site = Core.Choice.site ~node:0 ~occurrence:0 (simple_choice [ "a"; "b" ]) in
  routed.Core.Resolver.feedback ~site ~chosen:1 ~reward:1.;
  checki "feedback routed" 1 (Core.Bandit.pulls bandit site ~arm:1)

let test_resolver_epsilon_mix () =
  let explore = Core.Resolver.scripted [ ("pick", 1) ] in
  let exploit = Core.Resolver.first in
  let r = Core.Resolver.epsilon_mix ~epsilon:0.5 ~explore ~exploit in
  let g = rng () in
  let picks =
    List.init 200 (fun _ ->
        snd (Core.Resolver.apply r g (simple_choice [ "a"; "b" ]) ~node:0 ~occurrence:0))
  in
  checkb "both sides used" true (List.mem 0 picks && List.mem 1 picks);
  Alcotest.check_raises "bad epsilon"
    (Invalid_argument "Resolver.epsilon_mix: epsilon out of [0,1]") (fun () ->
      ignore (Core.Resolver.epsilon_mix ~epsilon:2. ~explore ~exploit))

let test_resolver_out_of_range_rejected () =
  let bad = Core.Resolver.make ~name:"bad" (fun _ _ -> 99) in
  Alcotest.check_raises "index checked"
    (Invalid_argument "Resolver.apply: bad answered 99 for arity 2 at pick") (fun () ->
      ignore (apply bad (simple_choice [ "a"; "b" ])))

(* ---------- Bandit ---------- *)

let site_of ?(label = "b") ?(node = 0) values =
  Core.Choice.site ~node ~occurrence:0 (simple_choice ~label values)

let test_bandit_tries_all_arms_first () =
  let b = Core.Bandit.create () in
  let g = rng () in
  let s = site_of [ "x"; "y"; "z" ] in
  let first3 =
    List.init 3 (fun _ ->
        let i = Core.Bandit.select b g s in
        Core.Bandit.update b s ~arm:i ~reward:0.;
        i)
  in
  Alcotest.check (Alcotest.list Alcotest.int) "each arm once" [ 0; 1; 2 ] first3

let test_bandit_converges_to_best () =
  let b = Core.Bandit.create ~algo:(Core.Bandit.Ucb1 0.5) () in
  let g = rng () in
  let s = site_of [ "bad"; "good" ] in
  for _ = 1 to 200 do
    let i = Core.Bandit.select b g s in
    Core.Bandit.update b s ~arm:i ~reward:(if i = 1 then 1. else 0.)
  done;
  checkb "good arm pulled most" true
    (Core.Bandit.pulls b s ~arm:1 > 3 * Core.Bandit.pulls b s ~arm:0);
  checkf "mean reward learned" 1. (Core.Bandit.mean_reward b s ~arm:1)

let test_bandit_epsilon_greedy_explores () =
  let b = Core.Bandit.create ~algo:(Core.Bandit.Epsilon_greedy 0.5) () in
  let g = rng () in
  let s = site_of [ "a"; "b" ] in
  for _ = 1 to 100 do
    let i = Core.Bandit.select b g s in
    Core.Bandit.update b s ~arm:i ~reward:(if i = 0 then 1. else 0.)
  done;
  checkb "loser still explored" true (Core.Bandit.pulls b s ~arm:1 > 5)

let test_bandit_contexts_separate () =
  let b = Core.Bandit.create () in
  let near = Core.Choice.site ~node:0 ~occurrence:0
      (Core.Choice.make ~label:"c" [ Core.Choice.alt ~features:[ ("d", 0.1) ] 0; Core.Choice.alt ~features:[ ("d", 0.1) ] 1 ])
  in
  let far = Core.Choice.site ~node:0 ~occurrence:0
      (Core.Choice.make ~label:"c" [ Core.Choice.alt ~features:[ ("d", 99.) ] 0; Core.Choice.alt ~features:[ ("d", 99.) ] 1 ])
  in
  Core.Bandit.update b near ~arm:0 ~reward:1.;
  Core.Bandit.update b far ~arm:0 ~reward:0.;
  checki "two contexts" 2 (Core.Bandit.contexts b);
  checkf "near context isolated" 1. (Core.Bandit.mean_reward b near ~arm:0)

let test_bandit_resolver_feedback () =
  let b = Core.Bandit.create () in
  let r = Core.Bandit.to_resolver b in
  let s = site_of [ "a"; "b" ] in
  r.Core.Resolver.feedback ~site:s ~chosen:1 ~reward:2.;
  checki "feedback recorded" 1 (Core.Bandit.pulls b s ~arm:1);
  checkf "reward stored" 2. (Core.Bandit.mean_reward b s ~arm:1)

let test_bandit_invalid () =
  Alcotest.check_raises "bad epsilon" (Invalid_argument "Bandit.create: epsilon out of [0,1]")
    (fun () -> ignore (Core.Bandit.create ~algo:(Core.Bandit.Epsilon_greedy 2.) ()))

let test_bandit_exploit () =
  let b = Core.Bandit.create () in
  let s = site_of [ "a"; "b"; "c" ] in
  checki "unseen context answers 0" 0 (Core.Bandit.exploit b s);
  Core.Bandit.update b s ~arm:2 ~reward:1.;
  Core.Bandit.update b s ~arm:0 ~reward:0.2;
  checki "best mean wins" 2 (Core.Bandit.exploit b s);
  checki "context pulls" 2 (Core.Bandit.context_pulls b s);
  (* The frozen resolver never explores: repeated calls are stable. *)
  let r = Core.Bandit.exploit_resolver b in
  let g = rng () in
  for _ = 1 to 20 do
    checki "frozen" 2 (r.Core.Resolver.choose g s)
  done

let prop_bandit_select_in_range =
  QCheck.Test.make ~name:"bandit always answers in range" ~count:200
    QCheck.(pair (int_range 1 6) small_int)
    (fun (arity, seed) ->
      let b = Core.Bandit.create () in
      let g = Dsim.Rng.create seed in
      let s = Core.Choice.site ~node:0 ~occurrence:0 (simple_choice (List.init arity Fun.id)) in
      List.for_all
        (fun _ ->
          let i = Core.Bandit.select b g s in
          Core.Bandit.update b s ~arm:i ~reward:0.5;
          i >= 0 && i < arity)
        (List.init 20 Fun.id))

(* ---------- Objective & Property ---------- *)

let test_objective_scoring () =
  let o = Core.Objective.v ~name:"o" ~weight:2. (fun v -> float_of_int v) in
  checkf "weighted" 6. (Core.Objective.score o 3);
  checkf "total" 10. (Core.Objective.total [ o; Core.Objective.v ~name:"p" (fun v -> float_of_int (v + 1)) ] 3)

let test_objective_map_constrained () =
  let o = Core.Objective.v ~name:"o" (fun v -> float_of_int v) in
  let mapped = Core.Objective.map_view String.length o in
  checkf "mapped" 5. (Core.Objective.score mapped "hello");
  let constrained = Core.Objective.constrained o ~penalty:100. (fun v -> v >= 0) in
  checkf "ok no penalty" 3. (Core.Objective.score constrained 3);
  checkf "violating penalised" (-103.) (Core.Objective.score constrained (-3))

let test_objective_invalid_weight () =
  Alcotest.check_raises "weight" (Invalid_argument "Objective.v: weight must be positive")
    (fun () -> ignore (Core.Objective.v ~name:"x" ~weight:0. (fun _ -> 0.)))

let test_property_check () =
  let pos = Core.Property.safety ~name:"pos" (fun v -> v > 0) in
  let live = Core.Property.liveness ~name:"live" (fun v -> v > 10) in
  checki "no violation" 0 (List.length (Core.Property.check [ pos; live ] 5));
  let violated = Core.Property.check [ pos; live ] (-1) in
  checki "safety violated" 1 (List.length violated);
  checks "name" "pos" (List.hd violated).Core.Property.name;
  checkb "liveness never reported by check" true
    (List.for_all (fun (p : _ Core.Property.t) -> p.kind = Core.Property.Safety) violated);
  checkb "safety_holds" false (Core.Property.safety_holds [ pos ] (-1))

let test_property_map_view () =
  let p = Core.Property.safety ~name:"short" (fun s -> String.length s < 3) in
  let q = Core.Property.map_view string_of_int p in
  checkb "mapped holds" true (Core.Property.safety_holds [ q ] 42);
  checkb "mapped fails" false (Core.Property.safety_holds [ q ] 12345)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "core"
    [
      ( "choice",
        [
          Alcotest.test_case "build" `Quick test_choice_build;
          Alcotest.test_case "invalid" `Quick test_choice_invalid;
          Alcotest.test_case "features" `Quick test_choice_features;
          Alcotest.test_case "of_values feature fn" `Quick test_choice_of_values_feature_fn;
        ] );
      ( "resolver",
        [
          Alcotest.test_case "first" `Quick test_resolver_first;
          Alcotest.test_case "random uniform-ish" `Quick test_resolver_random_uniformish;
          Alcotest.test_case "round robin" `Quick test_resolver_round_robin;
          Alcotest.test_case "scripted" `Quick test_resolver_scripted;
          Alcotest.test_case "greedy" `Quick test_resolver_greedy;
          Alcotest.test_case "greedy missing feature" `Quick test_resolver_greedy_missing_feature_ranks_last;
          Alcotest.test_case "greedy random ties" `Quick test_resolver_greedy_random_ties;
          Alcotest.test_case "weighted" `Quick test_resolver_weighted;
          Alcotest.test_case "by label" `Quick test_resolver_by_label;
          Alcotest.test_case "epsilon mix" `Quick test_resolver_epsilon_mix;
          Alcotest.test_case "out of range rejected" `Quick test_resolver_out_of_range_rejected;
        ] );
      ( "bandit",
        Alcotest.test_case "tries all arms" `Quick test_bandit_tries_all_arms_first
        :: Alcotest.test_case "converges" `Quick test_bandit_converges_to_best
        :: Alcotest.test_case "epsilon explores" `Quick test_bandit_epsilon_greedy_explores
        :: Alcotest.test_case "contexts separate" `Quick test_bandit_contexts_separate
        :: Alcotest.test_case "resolver feedback" `Quick test_bandit_resolver_feedback
        :: Alcotest.test_case "invalid" `Quick test_bandit_invalid
        :: Alcotest.test_case "exploit" `Quick test_bandit_exploit
        :: qcheck [ prop_bandit_select_in_range ] );
      ( "objective+property",
        [
          Alcotest.test_case "scoring" `Quick test_objective_scoring;
          Alcotest.test_case "map/constrained" `Quick test_objective_map_constrained;
          Alcotest.test_case "invalid weight" `Quick test_objective_invalid_weight;
          Alcotest.test_case "property check" `Quick test_property_check;
          Alcotest.test_case "property map_view" `Quick test_property_map_view;
        ] );
    ]
