(* Tests for the Chord-style DHT. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let nid = Proto.Node_id.of_int

module D = Apps.Dht

module Small_params = struct
  let population = 8
  let query_period = 0.5
  let max_hops = 24
end

module App = D.Make (Small_params)
module E = Engine.Sim.Make (App)

let topology =
  Net.Topology.uniform ~n:Small_params.population
    (Net.Linkprop.v ~latency:0.01 ~bandwidth:1_000_000. ~loss:0.)

let make ?(resolver = Core.Resolver.greedy ~feature:"remaining" ()) ?(seed = 6) () =
  let eng = E.create ~seed ~jitter:0. ~topology () in
  E.set_resolver eng resolver;
  for i = 0 to Small_params.population - 1 do
    E.spawn eng (nid i)
  done;
  eng

(* ---------- ring arithmetic ---------- *)

let test_ring_distance () =
  checki "forward" 5 (D.distance 10 15);
  checki "wraps" (D.ring_size - 5) (D.distance 15 10);
  checki "self" 0 (D.distance 42 42)

let test_positions_spread () =
  let positions = List.init Small_params.population App.position_of in
  checki "distinct positions" Small_params.population
    (List.length (List.sort_uniq compare positions));
  checkb "in range" true (List.for_all (fun p -> p >= 0 && p < D.ring_size) positions)

let test_owner_of () =
  (* With 8 nodes on a 256 ring, node i sits at 32*i; key 33 belongs to
     the next node clockwise: node 2 at position 64. *)
  checki "key on node" 1 (Proto.Node_id.to_int (App.owner_of 32));
  checki "key after node" 2 (Proto.Node_id.to_int (App.owner_of 33));
  checki "wraparound" 0 (Proto.Node_id.to_int (App.owner_of 225))

(* ---------- routing ---------- *)

let totals eng =
  List.fold_left
    (fun (done_, issued, viol) (_, st) ->
      (done_ + List.length (App.lookups st), issued + App.issued st, viol + App.hop_violations st))
    (0, 0, 0) (E.live_nodes eng)

let test_lookups_complete () =
  let eng = make () in
  E.run_for eng 20.;
  let done_, issued, viol = totals eng in
  checkb "many lookups" true (issued > 100);
  (* Lookups issued in the final moments are still in flight; allow at
     most one outstanding per node. *)
  checkb "all but in-flight completed" true (done_ >= issued - Small_params.population);
  checki "no hop violations" 0 viol;
  checki "no property violations" 0 (List.length (E.violations eng))

let test_hops_logarithmic () =
  let eng = make () in
  E.run_for eng 20.;
  let hops = Dsim.Stats.create () in
  List.iter
    (fun (_, st) -> List.iter (fun (_, h) -> Dsim.Stats.add hops (float_of_int h)) (App.lookups st))
    (E.live_nodes eng);
  (* log2(8) = 3: greedy progress should average well under that. *)
  checkb "mean hops <= log n" true (Dsim.Stats.mean hops <= 3.0)

let test_all_policies_route () =
  List.iter
    (fun resolver ->
      let eng = make ~resolver () in
      E.run_for eng 10.;
      let done_, issued, viol = totals eng in
      checkb ("complete under " ^ resolver.Core.Resolver.name) true
        (done_ >= issued - Small_params.population);
      checki ("bounded under " ^ resolver.Core.Resolver.name) 0 viol)
    [
      Core.Resolver.greedy ~feature:"remaining" ();
      Core.Resolver.greedy ~feature:"rtt_ms" ();
      Core.Resolver.random;
      D.pns_resolver;
    ]

let test_routing_choice_exposed () =
  let eng = make ~resolver:Core.Resolver.random () in
  E.run_for eng 5.;
  checkb "route decisions logged" true
    (List.exists
       (fun (_, site, _) -> String.equal site.Core.Choice.site_label D.route_label)
       (E.decision_sites eng))

let test_pns_prefers_near_equal_progress () =
  let site =
    Core.Choice.site ~node:0 ~occurrence:0
      (Core.Choice.make ~label:D.route_label
         [
           Core.Choice.alt ~features:[ ("remaining", 10.); ("rtt_ms", 80.) ] 0;
           Core.Choice.alt ~features:[ ("remaining", 12.); ("rtt_ms", 5.) ] 1;
           Core.Choice.alt ~features:[ ("remaining", 200.); ("rtt_ms", 1.) ] 2;
         ])
  in
  let g = Dsim.Rng.create 1 in
  (* Alternative 1 is nearly as much progress as 0 but far cheaper;
     alternative 2 is cheap but barely advances — PNS must pick 1. *)
  checki "pns" 1 (D.pns_resolver.Core.Resolver.choose g site)

let test_experiment_shape () =
  let progress = Experiments.Dht_exp.run ~seed:4 ~duration:20. Experiments.Dht_exp.Progress in
  let proximity = Experiments.Dht_exp.run ~seed:4 ~duration:20. Experiments.Dht_exp.Proximity in
  checkb "progress completes" true
    (progress.Experiments.Dht_exp.completed
    >= progress.Experiments.Dht_exp.issued - Experiments.Dht_exp.population);
  (* Pure proximity routing takes many more hops than greedy progress. *)
  checkb "proximity pays in hops" true
    (proximity.Experiments.Dht_exp.mean_hops > 1.5 *. progress.Experiments.Dht_exp.mean_hops)

let () =
  Alcotest.run "dht"
    [
      ( "ring",
        [
          Alcotest.test_case "distance" `Quick test_ring_distance;
          Alcotest.test_case "positions" `Quick test_positions_spread;
          Alcotest.test_case "owner" `Quick test_owner_of;
        ] );
      ( "routing",
        [
          Alcotest.test_case "lookups complete" `Quick test_lookups_complete;
          Alcotest.test_case "hops logarithmic" `Quick test_hops_logarithmic;
          Alcotest.test_case "all policies" `Quick test_all_policies_route;
          Alcotest.test_case "choice exposed" `Quick test_routing_choice_exposed;
          Alcotest.test_case "pns picks combined" `Quick test_pns_prefers_near_equal_progress;
        ] );
      ("experiment", [ Alcotest.test_case "shape" `Slow test_experiment_shape ]);
    ]
