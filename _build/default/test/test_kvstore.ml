(* Tests for the replicated KV store and its read-replica policies. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let nid = Proto.Node_id.of_int

module K = Apps.Kvstore
module App = K.Default
module E = Engine.Sim.Make (App)

let topology =
  Net.Topology.uniform ~n:K.Default_params.population
    (Net.Linkprop.v ~latency:0.02 ~bandwidth:1_000_000. ~loss:0.)

let make ?(resolver = K.session_resolver) ?(seed = 8) () =
  let eng = E.create ~seed ~jitter:0. ~topology () in
  E.set_resolver eng resolver;
  for i = 0 to K.Default_params.population - 1 do
    E.spawn eng (nid i)
  done;
  eng

let totals eng =
  List.fold_left
    (fun (reads, viol, applied) (_, st) ->
      (reads + App.reads_done st, viol + App.monotonic_violations st, max applied (App.applied_seq st)))
    (0, 0, 0) (E.live_nodes eng)

let test_writes_replicate () =
  let eng = make () in
  E.run_for eng 10.;
  let _, _, head = totals eng in
  checkb "writes sequenced" true (head > 10);
  (* After a quiet period every replica has applied everything. *)
  E.run_for eng 1.;
  let applied = List.map (fun (_, st) -> App.applied_seq st) (E.live_nodes eng) in
  checkb "replicas close to head" true
    (List.for_all (fun a -> head - a <= 5) applied)

let test_reads_complete () =
  let eng = make () in
  E.run_for eng 20.;
  let reads, _, _ = totals eng in
  checkb "many reads served" true (reads > 100)

let test_monotonic_reads_hold_for_sane_policies () =
  List.iter
    (fun resolver ->
      let eng = make ~resolver () in
      E.run_for eng 30.;
      let _, viol, _ = totals eng in
      checki ("no regressions under " ^ resolver.Core.Resolver.name) 0 viol)
    [ K.primary_resolver; K.session_resolver; K.nearest_resolver ]

let test_apply_out_of_order_buffered () =
  (* Deliver applies 2 then 1 by hand: nothing applies until 1 lands,
     then both do, in order. *)
  let eng = E.create ~seed:8 ~jitter:0. ~topology () in
  E.set_resolver eng K.session_resolver;
  E.spawn eng (nid 1);
  E.run_for eng 0.05;
  E.inject eng ~src:(nid 0) ~dst:(nid 1) (K.Apply { seq = 2; key = 3; value = 2 });
  E.run_for eng 0.5;
  (match E.state_of eng (nid 1) with
  | Some st -> checki "gap blocks apply" 0 (App.applied_seq st)
  | None -> Alcotest.fail "replica missing");
  E.inject eng ~src:(nid 0) ~dst:(nid 1) (K.Apply { seq = 1; key = 7; value = 1 });
  E.run_for eng 0.5;
  match E.state_of eng (nid 1) with
  | Some st -> checki "both applied in order" 2 (App.applied_seq st)
  | None -> Alcotest.fail "replica missing"

(* ---------- resolver units ---------- *)

let read_site ~floor ~known =
  let alternative (rid, is_primary, rtt, known_seq) =
    Core.Choice.alt
      ~features:
        [
          ("replica_id", float_of_int rid);
          ("is_primary", if is_primary then 1. else 0.);
          ("rtt_ms", rtt);
          ("known_seq", known_seq);
          ("floor", floor);
        ]
      rid
  in
  Core.Choice.site ~node:2 ~occurrence:0
    (Core.Choice.make ~label:K.read_label (List.map alternative known))

let test_primary_resolver () =
  let site = read_site ~floor:5. ~known:[ (1, false, 5., 9.); (0, true, 80., 9.) ] in
  let g = Dsim.Rng.create 1 in
  checki "primary wins regardless of rtt" 1 (K.primary_resolver.Core.Resolver.choose g site)

let test_nearest_resolver () =
  let site = read_site ~floor:5. ~known:[ (0, true, 80., 9.); (3, false, 4., 0.) ] in
  let g = Dsim.Rng.create 1 in
  checki "cheapest wins regardless of freshness" 1
    (K.nearest_resolver.Core.Resolver.choose g site)

let test_session_resolver () =
  let g = Dsim.Rng.create 1 in
  (* A cheap fresh-enough replica beats both the primary and a cheaper
     stale one. *)
  let site =
    read_site ~floor:5.
      ~known:[ (0, true, 80., 99.); (3, false, 10., 7.); (4, false, 3., 2.) ]
  in
  checki "cheap fresh replica" 1 (K.session_resolver.Core.Resolver.choose g site);
  (* Nobody fresh: fall back to the primary. *)
  let site = read_site ~floor:50. ~known:[ (0, true, 80., 10.); (3, false, 3., 7.) ] in
  checki "primary fallback" 0 (K.session_resolver.Core.Resolver.choose g site)

let test_experiment_tradeoff () =
  let nearest = Experiments.Kvstore_exp.run ~seed:4 ~duration:30. Experiments.Kvstore_exp.Nearest in
  let primary =
    Experiments.Kvstore_exp.run ~seed:4 ~duration:30. Experiments.Kvstore_exp.Primary_only
  in
  checkb "nearest is faster" true
    (nearest.Experiments.Kvstore_exp.mean_read_ms < primary.Experiments.Kvstore_exp.mean_read_ms);
  checkb "primary is fresher or equal" true
    (primary.Experiments.Kvstore_exp.mean_staleness
    <= nearest.Experiments.Kvstore_exp.mean_staleness +. 0.05)

let () =
  Alcotest.run "kvstore"
    [
      ( "replication",
        [
          Alcotest.test_case "writes replicate" `Quick test_writes_replicate;
          Alcotest.test_case "reads complete" `Quick test_reads_complete;
          Alcotest.test_case "monotonic reads" `Quick test_monotonic_reads_hold_for_sane_policies;
          Alcotest.test_case "out-of-order applies" `Quick test_apply_out_of_order_buffered;
        ] );
      ( "resolvers",
        [
          Alcotest.test_case "primary" `Quick test_primary_resolver;
          Alcotest.test_case "nearest" `Quick test_nearest_resolver;
          Alcotest.test_case "session" `Quick test_session_resolver;
        ] );
      ("experiment", [ Alcotest.test_case "tradeoff" `Slow test_experiment_tradeoff ]);
    ]
