(* End-to-end sanity checks of the experiment drivers at reduced scale
   — the full-size runs live in the benchmark harness. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

module RT = Experiments.Randtree_exp
module GX = Experiments.Gossip_exp
module DX = Experiments.Dissem_exp
module PX = Experiments.Paxos_exp

let test_randtree_all_setups_join () =
  List.iter
    (fun setup ->
      let o = RT.run ~nodes:9 ~seed:2 ~with_failure:false setup in
      checki (RT.setup_name setup ^ " joined") 9 o.RT.joined;
      checkb (RT.setup_name setup ^ " depth") true (o.RT.depth_after_join >= 3))
    [ RT.Baseline; RT.Choice_random; RT.Choice_greedy ]

let test_randtree_failure_path () =
  let o = RT.run ~nodes:9 ~seed:2 ~with_failure:true RT.Choice_random in
  checkb "rejoin measured" true (o.RT.depth_after_rejoin <> None);
  checki "everyone back" 9 o.RT.joined

let test_randtree_median () =
  let o = RT.run_median ~nodes:9 ~seeds:[ 2; 3; 4 ] ~with_failure:false RT.Choice_random in
  checkb "median depth" true (o.RT.depth_after_join >= 3);
  checki "median joined" 9 o.RT.joined

let test_randtree_crystalball_not_worse () =
  let rand = RT.run ~nodes:9 ~seed:2 RT.Choice_random in
  let cb = RT.run ~nodes:9 ~seed:2 RT.Choice_crystalball in
  match (rand.RT.depth_after_rejoin, cb.RT.depth_after_rejoin) with
  | Some r, Some c -> checkb "CrystalBall <= Random + 1" true (c <= r + 1)
  | _ -> Alcotest.fail "missing rejoin depths"

let test_gossip_policies_cover () =
  List.iter
    (fun p ->
      let o = GX.run ~seed:2 ~waves:2 ~scenario:GX.Uniform p in
      checkb (GX.policy_name p ^ " covers") true (o.GX.max_coverage_s < 30.))
    [ GX.Restricted; GX.Random_peer; GX.Greedy_rtt ]

let test_gossip_scenarios_differ () =
  let fast = GX.run ~seed:2 ~waves:2 ~scenario:GX.Uniform GX.Random_peer in
  let slow = GX.run ~seed:2 ~waves:2 ~scenario:GX.Slow_stub GX.Random_peer in
  checkb "slow stub is slower" true (slow.GX.mean_coverage_s >= fast.GX.mean_coverage_s)

let test_dissem_scenarios () =
  let fast = DX.run ~seed:2 ~scenario:DX.Fast_seed DX.Random_block in
  let choked = DX.run ~seed:2 ~scenario:DX.Choked_seed DX.Random_block in
  checki "fast completes" 15 fast.DX.completed;
  checki "choked completes" 15 choked.DX.completed;
  checkb "choked slower" true (choked.DX.mean_completion_s > fast.DX.mean_completion_s)

let test_paxos_loaded_leader_shape () =
  let fixed = PX.run ~seed:2 ~duration:20. ~scenario:PX.Loaded_leader PX.Fixed_leader in
  let local = PX.run ~seed:2 ~duration:20. ~scenario:PX.Loaded_leader PX.Local in
  checki "fixed safe" 0 fixed.PX.agreement_violations;
  checki "local safe" 0 local.PX.agreement_violations;
  checkb "loaded leader hurts fixed" true
    (fixed.PX.mean_latency_ms > 1.5 *. local.PX.mean_latency_ms)

let test_metrics_exp () =
  match Experiments.Metrics_exp.run () with
  | Some c ->
      checkb "reduction positive" true (c.loc_reduction_percent > 0.);
      checkb "complexity ratio" true
        (c.baseline.Metrics.Code_metrics.per_handler
        > c.choice.Metrics.Code_metrics.per_handler)
  | None -> Alcotest.fail "sources not found"

let test_names_total () =
  checki "five randtree setups" 5 (List.length RT.all_setups);
  checki "six gossip policies" 6 (List.length GX.all_policies);
  checki "four dissem policies" 4 (List.length DX.all_policies);
  checki "five paxos policies" 5 (List.length PX.all_policies)

let test_randtree_churn () =
  let o = RT.run_churn ~nodes:11 ~seed:2 ~duration:30. RT.Choice_random in
  checkb "sampled" true (o.RT.samples >= 6);
  checkb "depth sane" true (o.RT.mean_depth > 2. && o.RT.mean_depth < 11.);
  (* One node is down at any time, so on average under 11 joined. *)
  checkb "availability tracked" true (o.RT.mean_joined < 11. && o.RT.mean_joined > 6.)

let test_paxos_partition () =
  let o = PX.run ~seed:2 ~duration:40. ~scenario:PX.Partitioned PX.Local in
  checki "agreement survives the partition" 0 o.PX.agreement_violations;
  (* The minority's proposals stall during the partition and recover
     after it heals, so commits continue but the tail stretches. *)
  checkb "most commands still commit" true (o.PX.committed * 10 >= o.PX.born * 8);
  checkb "tail shows the stall" true (o.PX.p99_latency_ms > o.PX.mean_latency_ms)

let test_randtree_scoped_lookahead () =
  let j, r = RT.run_scoped ~nodes:15 ~seed:2 ~hops:(Some 2) () in
  checkb "scoped join sane" true (j >= 3 && j <= 15);
  checkb "scoped rejoin sane" true (r >= 3 && r <= 15);
  let jg, rg = RT.run_scoped ~nodes:15 ~seed:2 ~hops:None () in
  checkb "global join sane" true (jg >= 3 && rg >= 3)

let test_gossip_playbook () =
  let o, contexts, forks =
    GX.run_playbook ~seed:3 ~waves:2 ~episodes:1 ~scenario:GX.Uniform ()
  in
  checkb "covers" true (o.GX.max_coverage_s < 30.);
  checkb "learned contexts" true (contexts > 0);
  checkb "offline forks" true (forks > 0)

let () =
  Alcotest.run "experiments"
    [
      ( "randtree",
        [
          Alcotest.test_case "all setups join" `Slow test_randtree_all_setups_join;
          Alcotest.test_case "failure path" `Slow test_randtree_failure_path;
          Alcotest.test_case "median" `Slow test_randtree_median;
          Alcotest.test_case "crystalball not worse" `Slow test_randtree_crystalball_not_worse;
          Alcotest.test_case "churn" `Slow test_randtree_churn;
          Alcotest.test_case "scoped lookahead" `Slow test_randtree_scoped_lookahead;
        ] );
      ( "gossip",
        [
          Alcotest.test_case "policies cover" `Slow test_gossip_policies_cover;
          Alcotest.test_case "scenarios differ" `Slow test_gossip_scenarios_differ;
          Alcotest.test_case "playbook" `Slow test_gossip_playbook;
        ] );
      ("dissem", [ Alcotest.test_case "scenarios" `Slow test_dissem_scenarios ]);
      ( "paxos",
        [
          Alcotest.test_case "loaded leader" `Slow test_paxos_loaded_leader_shape;
          Alcotest.test_case "partition" `Slow test_paxos_partition;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "code metrics" `Quick test_metrics_exp;
          Alcotest.test_case "inventories" `Quick test_names_total;
        ] );
    ]
