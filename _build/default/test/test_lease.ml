(* Tests for the buggy lease service and the S1/A2 steering experiment
   built on it. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let nid = Proto.Node_id.of_int

module L = Apps.Lease

module Calm_params = struct
  (* Expiry comfortably above hold time + RTT: the race disarmed. *)
  let population = 3
  let want_period = 2.0
  let hold_time = 0.5
  let expiry = 5.0
end

module Calm = L.Make (Calm_params)
module CalmE = Engine.Sim.Make (Calm)
module Buggy = L.Default
module BuggyE = Engine.Sim.Make (Buggy)

let topology n = Net.Topology.uniform ~n (Net.Linkprop.v ~latency:0.05 ~bandwidth:1_000_000. ~loss:0.)

let test_calm_lease_circulates () =
  let eng = CalmE.create ~seed:3 ~jitter:0. ~topology:(topology 3) () in
  CalmE.set_resolver eng Core.Resolver.random;
  for i = 0 to 2 do
    CalmE.spawn eng (nid i)
  done;
  CalmE.run_for eng 60.;
  let grants =
    List.fold_left (fun acc (_, st) -> acc + Calm.grants_made st) 0 (CalmE.live_nodes eng)
  in
  checkb "many grants" true (grants > 10);
  checki "no violations with a sound expiry" 0 (List.length (CalmE.violations eng))

let test_buggy_lease_violates () =
  let eng = BuggyE.create ~seed:3 ~jitter:0. ~topology:(Experiments.Steering_exp.topology) () in
  BuggyE.set_resolver eng Core.Resolver.random;
  for i = 0 to 3 do
    BuggyE.spawn eng (nid i)
  done;
  BuggyE.run_for eng 120.;
  checkb "the premature expiry races" true (List.length (BuggyE.violations eng) > 0);
  checkb "named property" true
    (List.for_all (fun (_, n) -> String.equal n "exclusive-lease") (BuggyE.violations eng))

let test_denied_when_busy () =
  let eng = CalmE.create ~seed:3 ~jitter:0. ~topology:(topology 3) () in
  CalmE.set_resolver eng Core.Resolver.random;
  for i = 0 to 2 do
    CalmE.spawn eng (nid i)
  done;
  CalmE.run_for eng 0.05;
  (* Two requests back to back: the first wins, the second is denied. *)
  CalmE.inject eng ~src:(nid 1) ~dst:(nid 0) L.Request;
  CalmE.inject eng ~after:0.2 ~src:(nid 2) ~dst:(nid 0) L.Request;
  CalmE.run_for eng 1.;
  checki "one lease granted" 1 (CalmE.delivered_of_kind eng "lease");
  checki "one denial" 1 (CalmE.delivered_of_kind eng "denied")

let test_release_frees () =
  let eng = CalmE.create ~seed:3 ~jitter:0. ~topology:(topology 3) () in
  CalmE.set_resolver eng Core.Resolver.random;
  for i = 0 to 2 do
    CalmE.spawn eng (nid i)
  done;
  CalmE.run_for eng 0.05;
  CalmE.inject eng ~src:(nid 1) ~dst:(nid 0) L.Request;
  CalmE.run_for eng 0.5;
  CalmE.inject eng ~src:(nid 1) ~dst:(nid 0) L.Release;
  CalmE.run_for eng 0.5;
  CalmE.inject eng ~src:(nid 2) ~dst:(nid 0) L.Request;
  CalmE.run_for eng 0.5;
  checki "second lease after release" 2 (CalmE.delivered_of_kind eng "lease")

let test_steering_experiment_s1 () =
  let base = Experiments.Steering_exp.run ~seed:5 ~duration:60. ~with_runtime:false () in
  let steered = Experiments.Steering_exp.run ~seed:5 ~duration:60. ~with_runtime:true () in
  checkb "bug fires unprotected" true (base.Experiments.Steering_exp.violations > 0);
  checkb "runtime prevents most" true
    (steered.Experiments.Steering_exp.violations * 2 < base.Experiments.Steering_exp.violations);
  checkb "filters actually fired" true (steered.Experiments.Steering_exp.filtered > 0)

let test_staleness_degrades_a2 () =
  let fresh =
    Experiments.Steering_exp.run ~seed:5 ~duration:60. ~checkpoint_delay:0.02 ~with_runtime:true ()
  in
  let stale =
    Experiments.Steering_exp.run ~seed:5 ~duration:60. ~checkpoint_delay:0.5 ~with_runtime:true ()
  in
  checkb "fresh model prevents more than a stale one" true
    (fresh.Experiments.Steering_exp.violations <= stale.Experiments.Steering_exp.violations)

let () =
  Alcotest.run "lease"
    [
      ( "protocol",
        [
          Alcotest.test_case "calm circulates" `Quick test_calm_lease_circulates;
          Alcotest.test_case "buggy violates" `Quick test_buggy_lease_violates;
          Alcotest.test_case "denied when busy" `Quick test_denied_when_busy;
          Alcotest.test_case "release frees" `Quick test_release_frees;
        ] );
      ( "steering",
        [
          Alcotest.test_case "S1 shape" `Slow test_steering_experiment_s1;
          Alcotest.test_case "A2 shape" `Slow test_staleness_degrades_a2;
        ] );
    ]
