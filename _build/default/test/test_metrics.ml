(* Tests for the code-metrics analyser and the table renderer. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let checkf = Alcotest.check (Alcotest.float 1e-9)

module CM = Metrics.Code_metrics

(* ---------- strip ---------- *)

let test_strip_comments () =
  let src = "let x = 1 (* comment *) + 2\n" in
  let s = CM.strip src in
  checkb "comment gone" false (String.length s >= 0 && String.exists (fun _ -> false) s);
  checkb "no word comment" true
    (not
       (List.exists
          (fun line -> String.length line > 0 && String.trim line = "comment")
          (String.split_on_char '\n' s)));
  checkb "code kept" true (String.length s > 10)

let test_strip_nested_comments () =
  let src = "a (* outer (* inner *) still-outer *) b" in
  let s = CM.strip src in
  checkb "inner gone" true (not (String.exists (fun c -> c = '*') s));
  checkb "a kept" true (s.[0] = 'a');
  checkb "b kept" true (s.[String.length s - 1] = 'b')

let test_strip_strings () =
  let src = "let s = \"if if if (* not a comment *)\"\nlet t = 2" in
  let s = CM.strip src in
  checkb "string contents blanked" true
    (not
       (String.length s >= 2
       && String.exists (fun _ -> false) s))
    |> ignore;
  (* No 'if' from inside the literal should survive. *)
  let m = CM.analyze_source ~file:"x" src in
  checki "no handlers so no ifs counted" 0 m.CM.if_else;
  checki "two lines of code" 2 m.CM.loc

let test_strip_escaped_quote () =
  let src = {|let s = "a\"b" let x = 1|} in
  let s = CM.strip src in
  checkb "terminates correctly" true (String.length s = String.length src)

(* ---------- analyze ---------- *)

let sample_source =
  String.concat "\n"
    [
      "let helper x = if x then 1 else 2";
      "";
      "let handle_join st msg =";
      "  if guard msg then";
      "    if full st then forward st else accept st";
      "  else st";
      "";
      "let on_timer st id =";
      "  if id = \"tick\" then tick st else st";
      "";
      "let pp fmt = ()";
    ]

let test_analyze_sample () =
  let m = CM.analyze_source ~file:"sample.ml" sample_source in
  checki "loc counts non-blank" 8 m.CM.loc;
  checki "two handler regions" 2 m.CM.handlers;
  (* 2 ifs in handle_join region, 1 in on_timer; helper's if is outside
     handler regions, pp ends the last region. *)
  checki "ifs inside handlers" 3 m.CM.if_else;
  checkf "per handler" 1.5 m.CM.per_handler

let test_analyze_h_prefix_and_init () =
  let src = "let h_ping st = if a then b else c\nlet init ctx = if x then y else z\n" in
  let m = CM.analyze_source ~file:"x" src in
  checki "h_ and init count" 2 m.CM.handlers;
  checki "their ifs" 2 m.CM.if_else

let test_analyze_no_handlers () =
  let m = CM.analyze_source ~file:"x" "let a = 1\nlet b = if c then 1 else 2\n" in
  checki "no handlers" 0 m.CM.handlers;
  checkf "zero per-handler" 0. m.CM.per_handler

let test_reduction_percent () =
  let b = CM.analyze_source ~file:"b" (String.concat "\n" (List.init 100 (fun i -> Printf.sprintf "let x%d = 1" i))) in
  let c = CM.analyze_source ~file:"c" (String.concat "\n" (List.init 57 (fun i -> Printf.sprintf "let x%d = 1" i))) in
  checkf "43%" 43. (CM.reduction_percent ~baseline:b ~improved:c)

let test_analyze_real_files () =
  match Experiments.Metrics_exp.run () with
  | Some c ->
      checkb "baseline bigger" true (c.baseline.CM.loc > c.choice.CM.loc);
      checkb "baseline more complex" true
        (c.baseline.CM.per_handler > 4. *. c.choice.CM.per_handler);
      checkb "meaningful reduction" true (c.loc_reduction_percent > 15.)
  | None -> Alcotest.fail "repository sources not found"

(* ---------- report ---------- *)

let test_table_rendering () =
  let out =
    Metrics.Report.table ~title:"T" ~header:[ "name"; "v" ]
      [ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  checkb "title present" true (String.length out > 0 && out.[0] = 'T');
  let lines = String.split_on_char '\n' out in
  checki "six lines (title, rule, header, sep, 2 rows, trailing)" 7 (List.length lines);
  (* Right-aligned numeric column: " 1" and "22" end their rows. *)
  checkb "alignment" true
    (List.exists (fun l -> String.length l > 0 && l.[String.length l - 1] = '1') lines)

let test_table_pads_short_rows () =
  let out = Metrics.Report.table ~title:"T" ~header:[ "a"; "b"; "c" ] [ [ "x" ] ] in
  checkb "no exception and rendered" true (String.length out > 0)

let test_formatters () =
  checks "fint" "42" (Metrics.Report.fint 42);
  checks "ffloat" "3.14" (Metrics.Report.ffloat 3.14159);
  checks "ffloat decimals" "3.1416" (Metrics.Report.ffloat ~decimals:4 3.14159);
  checks "fopt some" "7" (Metrics.Report.fopt_int (Some 7));
  checks "fopt none" "-" (Metrics.Report.fopt_int None)

(* ---------- treeview ---------- *)

let test_treeview_forest () =
  let forest =
    Metrics.Treeview.of_parents [ (0, None); (1, Some 0); (2, Some 0); (3, Some 1) ]
  in
  checki "one root" 1 (List.length forest);
  let root = List.hd forest in
  checki "root id" 0 root.Metrics.Treeview.id;
  checki "depth" 3 (Metrics.Treeview.depth root);
  let out = Metrics.Treeview.render forest in
  checkb "renders children" true
    (List.exists
       (fun line -> String.trim line <> "" && String.length line > 0)
       (String.split_on_char '\n' out));
  checkb "contains connectors" true (String.length out > 10)

let test_treeview_orphan_roots () =
  (* A node whose parent is outside the set becomes its own root. *)
  let forest = Metrics.Treeview.of_parents [ (5, Some 99); (6, Some 5) ] in
  checki "orphan promoted" 1 (List.length forest);
  checki "root is the orphan" 5 (List.hd forest).Metrics.Treeview.id

let test_treeview_cycle_safe () =
  let forest = Metrics.Treeview.of_parents [ (0, Some 1); (1, Some 0) ] in
  (* No root exists; both parents are in-set, so the forest is empty —
     and crucially, of_parents terminates. *)
  checki "cycle yields no roots" 0 (List.length forest)

let test_treeview_single () =
  let forest = Metrics.Treeview.of_parents [ (7, None) ] in
  checki "single depth" 1 (Metrics.Treeview.depth (List.hd forest));
  Alcotest.check Alcotest.string "single render" "7\n" (Metrics.Treeview.render forest)

let () =
  Alcotest.run "metrics"
    [
      ( "strip",
        [
          Alcotest.test_case "comments" `Quick test_strip_comments;
          Alcotest.test_case "nested" `Quick test_strip_nested_comments;
          Alcotest.test_case "strings" `Quick test_strip_strings;
          Alcotest.test_case "escapes" `Quick test_strip_escaped_quote;
        ] );
      ( "analyze",
        [
          Alcotest.test_case "sample" `Quick test_analyze_sample;
          Alcotest.test_case "h_ and init" `Quick test_analyze_h_prefix_and_init;
          Alcotest.test_case "no handlers" `Quick test_analyze_no_handlers;
          Alcotest.test_case "reduction" `Quick test_reduction_percent;
          Alcotest.test_case "real files" `Quick test_analyze_real_files;
        ] );
      ( "report",
        [
          Alcotest.test_case "table" `Quick test_table_rendering;
          Alcotest.test_case "padding" `Quick test_table_pads_short_rows;
          Alcotest.test_case "formatters" `Quick test_formatters;
        ] );
      ( "treeview",
        [
          Alcotest.test_case "forest" `Quick test_treeview_forest;
          Alcotest.test_case "orphan roots" `Quick test_treeview_orphan_roots;
          Alcotest.test_case "cycle safe" `Quick test_treeview_cycle_safe;
          Alcotest.test_case "single" `Quick test_treeview_single;
        ] );
    ]
