(* Tests for the content-distribution swarm. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let nid = Proto.Node_id.of_int

module D = Apps.Dissem

module Small_params = struct
  let population = 8
  let blocks = 12
  let block_bytes = 4096
  let degree = 3
  let tick_period = 0.2
  let request_timeout = 2.0
  let candidate_cap = 6
end

module App = D.Make (Small_params)
module E = Engine.Sim.Make (App)

let topology =
  Net.Topology.uniform ~n:Small_params.population
    (Net.Linkprop.v ~latency:0.005 ~bandwidth:10_000_000. ~loss:0.)

let make ?(resolver = Core.Resolver.random) ?(seed = 4) () =
  let eng = E.create ~seed ~jitter:0. ~topology () in
  E.set_resolver eng resolver;
  for i = 0 to Small_params.population - 1 do
    E.spawn eng (nid i)
  done;
  eng

let test_mesh_structure () =
  for i = 0 to Small_params.population - 1 do
    let ns = App.neighbors_of_id i in
    checkb "no self edge" false (List.mem i ns);
    checkb "ring connectivity" true
      (List.mem ((i + 1) mod Small_params.population) ns
      && List.mem ((i + Small_params.population - 1) mod Small_params.population) ns);
    checkb "ids in range" true (List.for_all (fun j -> j >= 0 && j < Small_params.population) ns)
  done

let test_seed_starts_complete () =
  let eng = make () in
  E.run_for eng 0.05;
  (match E.state_of eng (nid 0) with
  | Some st -> checkb "seed complete" true (App.complete st)
  | None -> Alcotest.fail "seed missing");
  match E.state_of eng (nid 1) with
  | Some st -> checki "peers start empty" 0 (D.Int_set.cardinal (App.have st))
  | None -> Alcotest.fail "peer missing"

let test_swarm_completes () =
  let eng = make () in
  E.run_for eng 60.;
  List.iter
    (fun (_, st) -> checkb "complete" true (App.complete st))
    (E.live_nodes eng);
  checki "no safety violations" 0 (List.length (E.violations eng))

let test_rarest_policy_completes_with_fewer_duplicates () =
  let run resolver =
    let eng = make ~resolver () in
    E.run_for eng 60.;
    let all_done = List.for_all (fun (_, st) -> App.complete st) (E.live_nodes eng) in
    (all_done, E.delivered_of_kind eng "piece")
  in
  let done_rand, pieces_rand = run Core.Resolver.random in
  let done_rarest, pieces_rarest = run (Core.Resolver.greedy ~feature:"rarity" ()) in
  checkb "random completes" true done_rand;
  checkb "rarest completes" true done_rarest;
  checkb "rarest not much more wasteful" true (pieces_rarest <= pieces_rand + 20)

let test_request_answered_only_if_held () =
  (* Spawn only two empty peers (no seed) so no background pieces flow. *)
  let eng = E.create ~seed:4 ~jitter:0. ~topology () in
  E.set_resolver eng Core.Resolver.random;
  E.spawn eng (nid 1);
  E.spawn eng (nid 2);
  E.run_for eng 0.05;
  E.inject eng ~src:(nid 2) ~dst:(nid 1) (D.Request { block = 3 });
  E.run_for eng 1.;
  checki "no piece from empty peer" 0 (E.delivered_of_kind eng "piece");
  (* Bring up the seed: a request to it is served. *)
  E.spawn eng (nid 0);
  E.run_for eng 0.05;
  E.inject eng ~src:(nid 2) ~dst:(nid 0) (D.Request { block = 3 });
  E.run_for eng 1.;
  checkb "seed serves" true (E.delivered_of_kind eng "piece" >= 1)

let test_have_updates_neighbor_maps () =
  let eng = make () in
  E.run_for eng 0.05;
  E.inject eng ~src:(nid 3) ~dst:(nid 1) (D.Have { blocks = [ 5; 6 ] });
  E.run_for eng 0.1;
  (* Node 1 should eventually request 5 or 6 from node 3 if neighbours;
     at minimum the state update must not crash and must be monotonic.
     We verify through the piece flow after giving node 3 the blocks. *)
  checkb "no violations" true (E.violations eng = [])

let test_experiment_random_vs_rarest_shape () =
  let run p =
    Experiments.Dissem_exp.run ~seed:5 ~deadline:90.
      ~scenario:Experiments.Dissem_exp.Choked_seed p
  in
  let rand = run Experiments.Dissem_exp.Random_block in
  let rarest = run Experiments.Dissem_exp.Rarest in
  checki "random all done" 15 rand.Experiments.Dissem_exp.completed;
  checki "rarest all done" 15 rarest.Experiments.Dissem_exp.completed;
  (* The paper's shape: with a constrained seed, rarest-random is at
     least as good as random. *)
  checkb "rarest <= random on choked seed" true
    (rarest.Experiments.Dissem_exp.mean_completion_s
    <= rand.Experiments.Dissem_exp.mean_completion_s +. 0.5)

let () =
  Alcotest.run "dissem"
    [
      ( "mesh",
        [
          Alcotest.test_case "structure" `Quick test_mesh_structure;
          Alcotest.test_case "seed complete" `Quick test_seed_starts_complete;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "swarm completes" `Quick test_swarm_completes;
          Alcotest.test_case "rarest completes" `Quick test_rarest_policy_completes_with_fewer_duplicates;
          Alcotest.test_case "request gating" `Quick test_request_answered_only_if_held;
          Alcotest.test_case "have updates" `Quick test_have_updates_neighbor_maps;
        ] );
      ( "experiment",
        [ Alcotest.test_case "random vs rarest shape" `Slow test_experiment_random_vs_rarest_shape ]
      );
    ]
