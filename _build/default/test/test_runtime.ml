(* Tests for the CrystalBall-enabled runtime: checkpoint staleness,
   steering rounds, event-filter installation and expiry. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let nid = Proto.Node_id.of_int

module Lock = Test_support.Lock_app
module R = Runtime.Crystal.Make (Lock)
module E = R.E

let topology =
  Net.Topology.uniform ~n:4 (Net.Linkprop.v ~latency:0.02 ~bandwidth:1_000_000. ~loss:0.)

let all_neighbors (_ : Lock.state) = [ nid 0; nid 1; nid 2; nid 3 ]

let config =
  {
    Runtime.Config.default with
    Runtime.Config.checkpoint_period = 0.5;
    checkpoint_delay = 0.1;
    steer_period = 0.5;
    steer_depth = 2;
    filter_ttl = 3.0;
  }

let make ?(config = config) () =
  let eng = E.create ~seed:1 ~jitter:0. ~topology () in
  E.set_resolver eng Core.Resolver.first;
  let cry = R.attach ~config ~neighbors:all_neighbors eng in
  (eng, cry)

let spawn_all eng =
  for i = 0 to 3 do
    E.spawn eng (nid i)
  done

let test_checkpoint_staleness () =
  let eng, cry = make () in
  spawn_all eng;
  R.run_for cry 0.3;
  (* A checkpoint was taken at ~0 but is only 0.3s old... wait: it
     becomes usable once checkpoint_delay (0.1s) has passed. *)
  checkb "usable after delay" true (R.latest_view cry <> None);
  let eng2, cry2 = make ~config:{ config with Runtime.Config.checkpoint_delay = 5.0 } () in
  spawn_all eng2;
  R.run_for cry2 1.0;
  checkb "not usable before delay" true (R.latest_view cry2 = None)

let test_neighborhood_view () =
  let eng, cry = make () in
  spawn_all eng;
  R.run_for cry 1.0;
  (match R.neighborhood_view cry ~of_node:(nid 0) with
  | Some view ->
      checki "all four (own + neighbours)" 4 (Proto.View.node_count view);
      checkb "own state present" true (Proto.View.find view (nid 0) <> None)
  | None -> Alcotest.fail "expected a view");
  checkb "dead node has no view" true (R.neighborhood_view cry ~of_node:(nid 9) = None)

let test_steering_filters_offender () =
  let eng, cry = make () in
  spawn_all eng;
  R.run_for cry 1.0;
  (* Node 0 takes the lock; a conflicting grant to node 1 is in flight
     with a long delay, giving the controller time to predict the
     violation and install a filter before it arrives. *)
  E.inject eng ~src:(nid 2) ~dst:(nid 0) Lock.Grant;
  R.run_for cry 0.5;
  E.inject eng ~after:2.0 ~src:(nid 3) ~dst:(nid 1) Lock.Grant;
  R.run_for cry 4.0;
  let report = R.report cry in
  checkb "steering ran" true (report.R.steering_rounds > 0);
  checkb "veto installed" true (report.R.vetoes_installed >= 1);
  checki "offending grant filtered" 1 (E.stats eng).messages_filtered;
  checki "no live violation" 0 (List.length (E.violations eng));
  checkb "verdicts logged" true (List.length (R.verdict_log cry) >= 1)

let test_filters_expire () =
  let eng, cry = make () in
  spawn_all eng;
  R.run_for cry 1.0;
  E.inject eng ~src:(nid 2) ~dst:(nid 0) Lock.Grant;
  R.run_for cry 0.5;
  E.inject eng ~after:2.0 ~src:(nid 3) ~dst:(nid 1) Lock.Grant;
  R.run_for cry 4.0;
  checki "filtered while fresh" 1 (E.stats eng).messages_filtered;
  (* After the holder releases, the same kind of message is harmless;
     once the TTL passes the filter must be gone. *)
  E.inject eng ~src:(nid 2) ~dst:(nid 0) Lock.Release;
  R.run_for cry 5.0;
  E.inject eng ~src:(nid 3) ~dst:(nid 1) Lock.Grant;
  R.run_for cry 1.0;
  checkb "grant delivered after expiry" true
    (match E.state_of eng (nid 1) with Some st -> st.Lock.holding | None -> false)

let test_no_violation_no_vetoes () =
  let eng, cry = make () in
  spawn_all eng;
  R.run_for cry 3.0;
  let report = R.report cry in
  checkb "rounds ran" true (report.R.steering_rounds >= 4);
  checki "nothing installed" 0 report.R.vetoes_installed;
  checki "nothing to report" 0 (List.length (R.verdict_log cry))

let test_report_counts () =
  let eng, cry = make () in
  spawn_all eng;
  R.run_for cry 2.6;
  let r = R.report cry in
  (* checkpoint at attach time plus one per period. *)
  checkb "checkpoints accumulate" true (r.R.checkpoints_taken >= 4);
  checkb "engine reachable" true (E.now (R.engine cry) = E.now eng)

let test_config_validation () =
  Alcotest.check_raises "bad period" (Invalid_argument "Config: checkpoint_period must be positive")
    (fun () ->
      ignore
        (Runtime.Config.validate
           { Runtime.Config.default with Runtime.Config.checkpoint_period = 0. }));
  Alcotest.check_raises "bad ttl" (Invalid_argument "Config: filter_ttl must be positive")
    (fun () ->
      ignore
        (Runtime.Config.validate { Runtime.Config.default with Runtime.Config.filter_ttl = -1. }))

let () =
  Alcotest.run "runtime"
    [
      ( "checkpoints",
        [
          Alcotest.test_case "staleness" `Quick test_checkpoint_staleness;
          Alcotest.test_case "neighborhood view" `Quick test_neighborhood_view;
        ] );
      ( "steering",
        [
          Alcotest.test_case "filters offender" `Quick test_steering_filters_offender;
          Alcotest.test_case "filters expire" `Quick test_filters_expire;
          Alcotest.test_case "quiet when safe" `Quick test_no_violation_no_vetoes;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "report counts" `Quick test_report_counts;
          Alcotest.test_case "config validation" `Quick test_config_validation;
        ] );
    ]
