(* Tests for the two RandTree variants: protocol behaviour, tree
   invariants under churn, and the behavioural contract between the
   baseline and the choice-exposed rewrite. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let nid = Proto.Node_id.of_int

module C = Apps.Randtree_common
module Base = Apps.Randtree_baseline.Default
module Choice = Apps.Randtree_choice.Default
module BE = Engine.Sim.Make (Base)
module CE = Engine.Sim.Make (Choice)

(* ---------- message vocabulary ---------- *)

let test_msg_kinds () =
  Alcotest.check Alcotest.string "join" "join" (C.msg_kind (C.Join { origin = nid 1 }));
  Alcotest.check Alcotest.string "reply" "join_reply" (C.msg_kind (C.Join_reply { depth = 2 }));
  Alcotest.check Alcotest.string "ping" "ping" (C.msg_kind C.Ping);
  Alcotest.check Alcotest.string "ack" "ping_ack" (C.msg_kind (C.Ping_ack { depth = 1 }));
  checkb "bytes positive" true (List.for_all (fun m -> C.msg_bytes m > 0)
    [ C.Join { origin = nid 1 }; C.Join_reply { depth = 1 }; C.Ping; C.Ping_ack { depth = 1 } ])

(* ---------- Measure ---------- *)

type toy = { parent : int option; joined : bool }

let toy_view nodes : (toy, unit) Proto.View.t =
  {
    time = Dsim.Vtime.zero;
    nodes = List.map (fun (i, parent, joined) -> (nid i, { parent; joined })) nodes;
    inflight = [];
  }

let parent st = Option.map nid st.parent
let joined st = st.joined

let test_measure_depths () =
  let v = toy_view [ (0, None, true); (1, Some 0, true); (2, Some 1, true) ] in
  checkb "root depth 1" true (C.Measure.depth_of ~parent v (nid 0) = Some 1);
  checkb "leaf depth 3" true (C.Measure.depth_of ~parent v (nid 2) = Some 3);
  checki "max depth" 3 (C.Measure.max_depth ~parent v);
  Alcotest.check (Alcotest.float 1e-9) "mean depth" 2. (C.Measure.mean_depth ~parent v);
  checkb "no cycle" false (C.Measure.has_cycle ~parent v)

let test_measure_cycle () =
  let v = toy_view [ (0, Some 1, true); (1, Some 0, true) ] in
  checkb "cycle detected" true (C.Measure.has_cycle ~parent v);
  checkb "cyclic depth undefined" true (C.Measure.depth_of ~parent v (nid 0) = None)

let test_measure_left_view_is_not_cycle () =
  (* A parent outside the view (crashed) must not count as a cycle. *)
  let v = toy_view [ (1, Some 9, true) ] in
  checkb "not a cycle" false (C.Measure.has_cycle ~parent v);
  checkb "depth undefined" true (C.Measure.depth_of ~parent v (nid 1) = None)

let test_measure_joined_count () =
  let v = toy_view [ (0, None, true); (1, None, false) ] in
  checki "joined" 1 (C.Measure.joined_count ~joined v)

(* ---------- engine-level joins ---------- *)

let topology n = Net.Topology.uniform ~n (Net.Linkprop.v ~latency:0.01 ~bandwidth:1_000_000. ~loss:0.)

let join_run_base resolver n =
  let eng = BE.create ~seed:5 ~jitter:0. ~topology:(topology n) () in
  BE.set_resolver eng resolver;
  for i = 0 to n - 1 do
    BE.spawn eng ~after:(0.3 *. float_of_int i) (nid i)
  done;
  BE.run_for eng (10. +. (0.3 *. float_of_int n));
  eng

let join_run_choice resolver n =
  let eng = CE.create ~seed:5 ~jitter:0. ~topology:(topology n) () in
  CE.set_resolver eng resolver;
  for i = 0 to n - 1 do
    CE.spawn eng ~after:(0.3 *. float_of_int i) (nid i)
  done;
  CE.run_for eng (10. +. (0.3 *. float_of_int n));
  eng

let test_baseline_join_all () =
  let eng = join_run_base Core.Resolver.random 12 in
  let view = BE.global_view eng in
  checki "all present" 12 (Proto.View.node_count view);
  checkb "all joined" true
    (List.for_all (fun (_, st) -> Base.is_joined st) view.Proto.View.nodes);
  checkb "no cycle" false (C.Measure.has_cycle ~parent:Base.parent_of view);
  let d = C.Measure.max_depth ~parent:Base.parent_of view in
  checkb "depth sane" true (d >= 4 && d <= 12);
  checkb "degree bound" true
    (List.for_all
       (fun (_, st) -> List.length (Base.children_of st) <= 2)
       view.Proto.View.nodes)

let test_choice_join_all () =
  let eng = join_run_choice Core.Resolver.random 12 in
  let view = CE.global_view eng in
  checkb "all joined" true
    (List.for_all (fun (_, st) -> Choice.is_joined st) view.Proto.View.nodes);
  checkb "no cycle" false (C.Measure.has_cycle ~parent:Choice.parent_of view);
  checkb "degree bound" true
    (List.for_all
       (fun (_, st) -> List.length (Choice.children_of st) <= 2)
       view.Proto.View.nodes)

let test_choice_exposes_forward_label () =
  let eng = join_run_choice Core.Resolver.random 12 in
  let labels =
    List.map (fun (_, site, _) -> site.Core.Choice.site_label) (CE.decision_sites eng)
  in
  checkb "join.forward decisions happened" true (List.mem Choice.forward_label labels)

let test_baseline_makes_no_choices () =
  let eng = join_run_base Core.Resolver.random 12 in
  checki "policy is hard-coded" 0 (List.length (BE.decision_sites eng))

let test_parent_failure_triggers_rejoin () =
  let eng = join_run_choice Core.Resolver.random 6 in
  let view = CE.global_view eng in
  (* Kill a non-root node that has children. *)
  let victim =
    List.find_map
      (fun (id, st) ->
        if (not (Proto.Node_id.equal id (nid 0))) && Choice.children_of st <> [] then Some id
        else None)
      view.Proto.View.nodes
  in
  match victim with
  | None -> Alcotest.fail "no interior node found"
  | Some v ->
      CE.kill eng v;
      CE.run_for eng 15.;
      CE.restart eng v;
      CE.run_for eng 15.;
      let view = CE.global_view eng in
      checki "everyone back" 6 (Proto.View.node_count view);
      checkb "all joined again" true
        (List.for_all (fun (_, st) -> Choice.is_joined st) view.Proto.View.nodes);
      checkb "still acyclic" false (C.Measure.has_cycle ~parent:Choice.parent_of view)

let test_no_cycle_property_enforced_live () =
  let eng = join_run_choice Core.Resolver.random 10 in
  checki "no property violations during churnless join" 0 (List.length (CE.violations eng))

(* ---------- experiment-level ---------- *)

let test_experiment_shapes () =
  let o = Experiments.Randtree_exp.run ~nodes:15 ~seed:3 ~with_failure:false
      Experiments.Randtree_exp.Choice_random
  in
  checki "all joined" 15 o.Experiments.Randtree_exp.joined;
  checkb "depth plausible" true (o.depth_after_join >= 4 && o.depth_after_join <= 15);
  checkb "no rejoin measured" true (o.depth_after_rejoin = None)

let test_optimal_depth () =
  checki "31 nodes binary" 5 (Experiments.Randtree_exp.optimal_depth ~nodes:31 ~max_children:2);
  checki "1 node" 1 (Experiments.Randtree_exp.optimal_depth ~nodes:1 ~max_children:2);
  checki "4 nodes ternary" 2 (Experiments.Randtree_exp.optimal_depth ~nodes:4 ~max_children:3)

let test_baseline_equals_choice_random () =
  (* The paper reports identical depths for Baseline and Choice-Random;
     with a shared seed our two implementations agree exactly. *)
  let b = Experiments.Randtree_exp.run ~nodes:15 ~seed:8 Experiments.Randtree_exp.Baseline in
  let c = Experiments.Randtree_exp.run ~nodes:15 ~seed:8 Experiments.Randtree_exp.Choice_random in
  checki "join depths equal" b.Experiments.Randtree_exp.depth_after_join
    c.Experiments.Randtree_exp.depth_after_join

let () =
  Alcotest.run "randtree"
    [
      ("messages", [ Alcotest.test_case "kinds" `Quick test_msg_kinds ]);
      ( "measure",
        [
          Alcotest.test_case "depths" `Quick test_measure_depths;
          Alcotest.test_case "cycle" `Quick test_measure_cycle;
          Alcotest.test_case "left view" `Quick test_measure_left_view_is_not_cycle;
          Alcotest.test_case "joined count" `Quick test_measure_joined_count;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "baseline joins" `Quick test_baseline_join_all;
          Alcotest.test_case "choice joins" `Quick test_choice_join_all;
          Alcotest.test_case "choice exposes label" `Quick test_choice_exposes_forward_label;
          Alcotest.test_case "baseline has no choices" `Quick test_baseline_makes_no_choices;
          Alcotest.test_case "failure rejoin" `Slow test_parent_failure_triggers_rejoin;
          Alcotest.test_case "live property check" `Quick test_no_cycle_property_enforced_live;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "shapes" `Slow test_experiment_shapes;
          Alcotest.test_case "optimal depth" `Quick test_optimal_depth;
          Alcotest.test_case "baseline = choice-random" `Slow test_baseline_equals_choice_random;
        ] );
    ]
