(* Tests for multi-instance Paxos: the acceptor protocol, commit flow,
   agreement under message loss, and the proposer-choice resolvers. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let nid = Proto.Node_id.of_int

module P = Apps.Paxos

module Quiet_params = struct
  let population = 3
  let client_period = 0.  (* no local clients; tests inject commands *)
  let retry_timeout = 1.0
end

module App = P.Make (Quiet_params)
module E = Engine.Sim.Make (App)

module Busy_params = struct
  let population = 5
  let client_period = 0.5
  let retry_timeout = 1.0
end

module Busy = P.Make (Busy_params)
module BE = Engine.Sim.Make (Busy)

let topology n ?(loss = 0.) () =
  Net.Topology.uniform ~n (Net.Linkprop.v ~latency:0.01 ~bandwidth:1_000_000. ~loss)

let make_quiet ?(seed = 3) () =
  let eng = E.create ~seed ~jitter:0. ~topology:(topology 3 ()) () in
  E.set_resolver eng P.self_resolver;
  for i = 0 to 2 do
    E.spawn eng (nid i)
  done;
  E.run_for eng 0.05;
  eng

let cmd ?(origin = 1) ?(seq = 0) () = { P.origin; seq; born = 0. }

let decided_count eng i =
  match E.state_of eng (nid i) with
  | Some st -> P.Int_map.cardinal (App.decided st)
  | None -> -1

let test_submit_commits_everywhere () =
  let eng = make_quiet () in
  E.inject eng ~src:(nid 1) ~dst:(nid 0) (P.Submit { cmd = cmd () });
  E.run_for eng 2.;
  for i = 0 to 2 do
    checki (Printf.sprintf "replica %d decided" i) 1 (decided_count eng i)
  done;
  checki "no violations" 0 (List.length (E.violations eng))

let test_acceptor_ballot_ordering () =
  let eng = make_quiet () in
  (* A high prepare blocks a lower accept. *)
  E.inject eng ~src:(nid 1) ~dst:(nid 0) (P.Prepare { inst = 0; bal = 50 });
  E.run_for eng 1.;
  checki "promise sent" 1 (E.delivered_of_kind eng "promise");
  E.inject eng ~src:(nid 2) ~dst:(nid 0) (P.Accept_req { inst = 0; bal = 10; cmd = cmd () });
  E.run_for eng 1.;
  checki "low accept rejected" 0 (E.delivered_of_kind eng "accepted");
  E.inject eng ~src:(nid 2) ~dst:(nid 0) (P.Accept_req { inst = 0; bal = 60; cmd = cmd () });
  E.run_for eng 1.;
  checki "high accept taken" 1 (E.delivered_of_kind eng "accepted")

let test_lower_prepare_ignored () =
  let eng = make_quiet () in
  E.inject eng ~src:(nid 1) ~dst:(nid 0) (P.Prepare { inst = 0; bal = 50 });
  E.run_for eng 1.;
  E.inject eng ~src:(nid 2) ~dst:(nid 0) (P.Prepare { inst = 0; bal = 20 });
  E.run_for eng 1.;
  checki "only the first promised" 1 (E.delivered_of_kind eng "promise")

let test_latency_recorded_at_origin () =
  let eng = make_quiet () in
  (* Born at replica 0's clock 0; committed shortly after. *)
  E.inject eng ~src:(nid 0) ~dst:(nid 0) (P.Submit { cmd = cmd ~origin:0 () });
  E.run_for eng 2.;
  match E.state_of eng (nid 0) with
  | Some st ->
      checki "one latency sample" 1 (List.length (App.latencies st));
      checkb "positive latency" true (List.for_all (fun l -> l > 0.) (App.latencies st))
  | None -> Alcotest.fail "origin missing"

let run_busy ~seed ~loss ~duration resolver =
  let eng = BE.create ~seed ~jitter:0. ~topology:(topology 5 ~loss ()) () in
  BE.set_resolver eng resolver;
  for i = 0 to 4 do
    BE.spawn eng (nid i)
  done;
  BE.run_for eng duration;
  eng

let test_agreement_under_loss () =
  (* 5% loss: retries must recover and agreement must never break. *)
  let eng = run_busy ~seed:11 ~loss:0.05 ~duration:30. P.self_resolver in
  checki "agreement intact" 0
    (List.length (List.filter (fun (_, n) -> n = "agreement") (BE.violations eng)));
  let committed =
    List.fold_left (fun acc (_, st) -> acc + List.length (Busy.latencies st)) 0 (BE.live_nodes eng)
  in
  checkb "most commands committed" true (committed > 200)

let test_throughput_all_policies () =
  List.iter
    (fun resolver ->
      let eng = run_busy ~seed:7 ~loss:0. ~duration:10. resolver in
      let committed =
        List.fold_left
          (fun acc (_, st) -> acc + List.length (Busy.latencies st))
          0 (BE.live_nodes eng)
      in
      checkb ("commits under " ^ resolver.Core.Resolver.name) true (committed >= 80);
      checki ("agreement under " ^ resolver.Core.Resolver.name) 0
        (List.length (List.filter (fun (_, n) -> n = "agreement") (BE.violations eng))))
    [
      P.self_resolver;
      P.fixed_leader_resolver ~leader:0;
      P.round_robin_resolver ~population:5;
      Core.Resolver.random;
    ]

let test_equal_ballot_value_change_rejected () =
  (* Regression for the crash-recovery bug the chaos example caught: an
     amnesiac proposer reusing a ballot must not overwrite an accepted
     value; re-sending the same value stays idempotent. *)
  let eng = make_quiet () in
  let a = cmd ~origin:1 ~seq:0 () and b = cmd ~origin:2 ~seq:9 () in
  E.inject eng ~src:(nid 1) ~dst:(nid 0) (P.Accept_req { inst = 0; bal = 6; cmd = a });
  E.run_for eng 0.5;
  checki "first accepted" 1 (E.delivered_of_kind eng "accepted");
  E.inject eng ~src:(nid 2) ~dst:(nid 0) (P.Accept_req { inst = 0; bal = 6; cmd = b });
  E.run_for eng 0.5;
  checki "conflicting value refused" 1 (E.delivered_of_kind eng "accepted");
  E.inject eng ~src:(nid 1) ~dst:(nid 0) (P.Accept_req { inst = 0; bal = 6; cmd = a });
  E.run_for eng 0.5;
  checki "same value idempotent" 2 (E.delivered_of_kind eng "accepted")

let test_crash_recovery_chaos_regression () =
  (* The exact chaos-plan shape that exposed the instance-reuse bug:
     partition + crash + restart; agreement must survive. *)
  let module F = Engine.Faultplan in
  let module Run = F.Run (BE) in
  let eng = BE.create ~seed:7 ~jitter:0. ~topology:(topology 5 ()) () in
  BE.set_resolver eng Apps.Paxos.self_resolver;
  for i = 0 to 4 do
    BE.spawn eng (nid i)
  done;
  Run.execute ~and_then:15. eng
    (F.plan
       [
         (5., F.Partition ([ 3; 4 ], [ 0; 1; 2 ]));
         (8., F.Kill 2);
         (11., F.Restart 2);
         (14., F.Heal_partition ([ 3; 4 ], [ 0; 1; 2 ]));
       ]);
  checki "agreement survives crash-recovery" 0
    (List.length (List.filter (fun (_, n) -> n = "agreement") (BE.violations eng)))

(* ---------- model checking ---------- *)

module Ex = Mc.Explorer.Make (App)

let test_agreement_model_checked () =
  (* Freeze a live run mid-protocol (accept requests in flight), then
     exhaustively explore every delivery order, every message drop and
     adversarial generic-node injections: agreement must hold in every
     reachable world. *)
  let eng = make_quiet () in
  E.inject eng ~src:(nid 1) ~dst:(nid 0) (P.Submit { cmd = cmd () });
  E.inject eng ~src:(nid 2) ~dst:(nid 1) (P.Submit { cmd = cmd ~origin:2 ~seq:1 () });
  E.run_for eng 0.015;
  let view = E.global_view eng in
  checkb "protocol frozen mid-flight" true (Proto.View.inflight_count view > 0);
  let world = Ex.world_of_view view in
  let result =
    Ex.explore ~max_worlds:30_000 ~include_drops:true ~generic_node:true ~depth:4 world
  in
  checkb "a real state space was covered" true (result.Ex.worlds_explored > 100);
  checki "agreement holds in every explored world" 0
    (List.length
       (List.filter (fun (v : Ex.violation) -> v.Ex.property = "agreement") result.Ex.violations))

(* ---------- resolver units ---------- *)

let proposer_site ~node ~seq =
  let alternative rid =
    Core.Choice.alt
      ~features:
        [
          ("replica_id", float_of_int rid);
          ("seq", float_of_int seq);
          ("is_self", if rid = node then 1. else 0.);
        ]
      rid
  in
  Core.Choice.site ~node ~occurrence:0
    (Core.Choice.make ~label:P.proposer_label (List.map alternative [ 0; 1; 2; 3; 4 ]))

let test_fixed_leader_resolver () =
  let r = P.fixed_leader_resolver ~leader:2 in
  let g = Dsim.Rng.create 1 in
  checki "leader picked" 2 (r.Core.Resolver.choose g (proposer_site ~node:4 ~seq:9))

let test_self_resolver () =
  let r = P.self_resolver in
  let g = Dsim.Rng.create 1 in
  checki "self picked" 3 (r.Core.Resolver.choose g (proposer_site ~node:3 ~seq:0))

let test_round_robin_resolver () =
  let r = P.round_robin_resolver ~population:5 in
  let g = Dsim.Rng.create 1 in
  let picks = List.init 5 (fun seq -> r.Core.Resolver.choose g (proposer_site ~node:1 ~seq)) in
  Alcotest.check (Alcotest.list Alcotest.int) "rotates" [ 1; 2; 3; 4; 0 ] picks

let test_experiment_fixed_vs_local () =
  let run p =
    Experiments.Paxos_exp.run ~seed:6 ~duration:20.
      ~scenario:Experiments.Paxos_exp.Balanced_wan p
  in
  let fixed = run Experiments.Paxos_exp.Fixed_leader in
  let local = run Experiments.Paxos_exp.Local in
  checki "fixed agreement" 0 fixed.Experiments.Paxos_exp.agreement_violations;
  checki "local agreement" 0 local.Experiments.Paxos_exp.agreement_violations;
  (* The Mencius-style local proposer beats the fixed leader on WAN
     commit latency — the paper's §3.1 consensus story. *)
  checkb "local faster" true
    (local.Experiments.Paxos_exp.mean_latency_ms < fixed.Experiments.Paxos_exp.mean_latency_ms)

let () =
  Alcotest.run "paxos"
    [
      ( "protocol",
        [
          Alcotest.test_case "submit commits" `Quick test_submit_commits_everywhere;
          Alcotest.test_case "ballot ordering" `Quick test_acceptor_ballot_ordering;
          Alcotest.test_case "lower prepare ignored" `Quick test_lower_prepare_ignored;
          Alcotest.test_case "latency at origin" `Quick test_latency_recorded_at_origin;
          Alcotest.test_case "equal-ballot value change" `Quick test_equal_ballot_value_change_rejected;
          Alcotest.test_case "crash-recovery chaos" `Slow test_crash_recovery_chaos_regression;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "under loss" `Slow test_agreement_under_loss;
          Alcotest.test_case "all policies" `Slow test_throughput_all_policies;
        ] );
      ( "model-checking",
        [ Alcotest.test_case "agreement under adversary" `Slow test_agreement_model_checked ] );
      ( "resolvers",
        [
          Alcotest.test_case "fixed leader" `Quick test_fixed_leader_resolver;
          Alcotest.test_case "self" `Quick test_self_resolver;
          Alcotest.test_case "round robin" `Quick test_round_robin_resolver;
        ] );
      ( "experiment",
        [ Alcotest.test_case "fixed vs local" `Slow test_experiment_fixed_vs_local ] );
    ]
