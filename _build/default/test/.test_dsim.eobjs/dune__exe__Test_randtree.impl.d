test/test_randtree.ml: Alcotest Apps Core Dsim Engine Experiments List Net Option Proto
