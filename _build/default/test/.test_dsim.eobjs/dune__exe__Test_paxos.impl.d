test/test_paxos.ml: Alcotest Apps Core Dsim Engine Experiments List Mc Net Printf Proto
