test/test_dsim.ml: Alcotest Array Dsim Float Fun Gen Int List QCheck QCheck_alcotest
