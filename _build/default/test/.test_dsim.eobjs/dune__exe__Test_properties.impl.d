test/test_properties.ml: Alcotest Core Dsim Engine Fun Gen List Mc Metrics Net Proto QCheck QCheck_alcotest String Test_support
