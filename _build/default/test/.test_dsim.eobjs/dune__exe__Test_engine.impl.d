test/test_engine.ml: Alcotest Core Dsim Engine Format List Metrics Net Option Proto Runtime String
