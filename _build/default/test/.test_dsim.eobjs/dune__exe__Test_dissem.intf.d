test/test_dissem.mli:
