test/test_faultplan.ml: Alcotest Core Dsim Engine Format List Net Proto String Test_support
