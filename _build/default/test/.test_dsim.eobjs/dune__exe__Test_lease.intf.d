test/test_lease.mli:
