test/test_core.ml: Alcotest Array Core Dsim Fun List QCheck QCheck_alcotest String
