test/test_lease.ml: Alcotest Apps Core Engine Experiments List Net Proto String
