test/test_dht.ml: Alcotest Apps Core Dsim Engine Experiments List Net Proto String
