test/test_wire.ml: Alcotest Apps Core Engine Float Fun List Net Printf Proto QCheck QCheck_alcotest Result Seq String Wire
