test/test_proto.ml: Alcotest Core Dsim Format List Net Proto String
