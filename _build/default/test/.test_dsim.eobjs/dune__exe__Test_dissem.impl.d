test/test_dissem.ml: Alcotest Apps Core Engine Experiments List Net Proto
