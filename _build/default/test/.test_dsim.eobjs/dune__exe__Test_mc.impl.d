test/test_mc.ml: Alcotest Dsim List Mc Proto String Test_support
