test/test_gossip.ml: Alcotest Apps Core Dsim Engine Experiments Fun Int List Metrics Net Printf Proto
