test/test_randtree.mli:
