test/test_kvstore.ml: Alcotest Apps Core Dsim Engine Experiments List Net Proto
