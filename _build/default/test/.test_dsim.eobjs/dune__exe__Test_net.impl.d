test/test_net.ml: Alcotest Dsim Float List Net QCheck QCheck_alcotest
