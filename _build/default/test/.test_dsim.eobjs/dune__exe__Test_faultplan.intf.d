test/test_faultplan.mli:
