test/test_runtime.ml: Alcotest Core List Net Proto Runtime Test_support
