test/test_metrics.ml: Alcotest Experiments List Metrics Printf String
