(* Tests for the declarative fault-schedule DSL, executed against the
   lock toy app. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let nid = Proto.Node_id.of_int

module Lock = Test_support.Lock_app
module E = Engine.Sim.Make (Lock)
module F = Engine.Faultplan
module Run = F.Run (E)

let topology =
  Net.Topology.uniform ~n:4 (Net.Linkprop.v ~latency:0.02 ~bandwidth:1_000_000. ~loss:0.)

let make () =
  let eng = E.create ~seed:2 ~jitter:0. ~topology () in
  E.set_resolver eng Core.Resolver.random;
  for i = 0 to 3 do
    E.spawn eng (nid i)
  done;
  E.run_for eng 0.1;
  eng

(* ---------- plan structure ---------- *)

let test_plan_sorting () =
  let p = F.plan [ (5., F.Kill 1); (1., F.Restart 2); (3., F.Kill 0) ] in
  Alcotest.check (Alcotest.list (Alcotest.float 0.)) "sorted times" [ 1.; 3.; 5. ]
    (List.map fst (F.events p));
  Alcotest.check (Alcotest.float 0.) "duration" 5. (F.duration p)

let test_plan_invalid () =
  Alcotest.check_raises "negative time" (Invalid_argument "Faultplan.plan: negative time")
    (fun () -> ignore (F.plan [ (-1., F.Kill 0) ]))

let test_plan_pp () =
  let p = F.plan [ (1., F.Partition ([ 0; 1 ], [ 2; 3 ])) ] in
  let s = Format.asprintf "%a" F.pp p in
  checkb "printable" true (String.length s > 10)

(* ---------- execution ---------- *)

let test_kill_restart_schedule () =
  let eng = make () in
  Run.execute ~and_then:0.5 eng
    (F.plan [ (0.5, F.Kill 2); (1.5, F.Restart 2) ]);
  checkb "node back" true (E.alive eng (nid 2));
  (* Timeline respected: total elapsed = 0.1 (setup) + 1.5 + 0.5. *)
  Alcotest.check (Alcotest.float 1e-6) "clock" 2.1 (Dsim.Vtime.to_seconds (E.now eng))

let test_kill_takes_effect_at_time () =
  let eng = make () in
  Run.execute eng (F.plan [ (0.5, F.Kill 2) ]);
  checkb "dead after plan" false (E.alive eng (nid 2))

let test_partition_blocks_and_heals () =
  let eng = make () in
  Run.execute eng (F.plan [ (0.1, F.Partition ([ 0; 1 ], [ 2; 3 ])) ]);
  E.inject eng ~src:(nid 0) ~dst:(nid 2) Lock.Grant;
  E.run_for eng 1.;
  checkb "cut blocks" true
    (match E.state_of eng (nid 2) with Some st -> not st.Lock.holding | None -> false);
  Run.execute eng (F.plan [ (0.1, F.Heal_partition ([ 0; 1 ], [ 2; 3 ])) ]);
  E.inject eng ~src:(nid 0) ~dst:(nid 2) Lock.Grant;
  E.run_for eng 1.;
  checkb "heal restores" true
    (match E.state_of eng (nid 2) with Some st -> st.Lock.holding | None -> false)

let test_degrade_and_restore () =
  let eng = make () in
  let base = (Net.Netem.path (E.netem eng) ~src:0 ~dst:1).Net.Linkprop.latency in
  Run.execute eng
    (F.plan [ (0.1, F.Degrade { endpoint = 1; latency_factor = 10.; bandwidth_factor = 0.1 }) ]);
  let slowed = (Net.Netem.path (E.netem eng) ~src:0 ~dst:1).Net.Linkprop.latency in
  checkb "latency inflated" true (slowed > 5. *. base);
  Run.execute eng (F.plan [ (0.1, F.Restore 1) ]);
  let restored = (Net.Netem.path (E.netem eng) ~src:0 ~dst:1).Net.Linkprop.latency in
  Alcotest.check (Alcotest.float 1e-9) "restored" base restored

let test_empty_plan_is_noop () =
  let eng = make () in
  let before = Dsim.Vtime.to_seconds (E.now eng) in
  Run.execute eng (F.plan []);
  Alcotest.check (Alcotest.float 1e-9) "time unchanged" before
    (Dsim.Vtime.to_seconds (E.now eng));
  checki "duration 0" 0 (int_of_float (F.duration (F.plan [])))

let () =
  Alcotest.run "faultplan"
    [
      ( "structure",
        [
          Alcotest.test_case "sorting" `Quick test_plan_sorting;
          Alcotest.test_case "invalid" `Quick test_plan_invalid;
          Alcotest.test_case "pp" `Quick test_plan_pp;
        ] );
      ( "execution",
        [
          Alcotest.test_case "kill/restart schedule" `Quick test_kill_restart_schedule;
          Alcotest.test_case "kill timing" `Quick test_kill_takes_effect_at_time;
          Alcotest.test_case "partition" `Quick test_partition_blocks_and_heals;
          Alcotest.test_case "degrade/restore" `Quick test_degrade_and_restore;
          Alcotest.test_case "empty plan" `Quick test_empty_plan_is_noop;
        ] );
    ]
