test/support/lock_app.ml: Core Format Proto
